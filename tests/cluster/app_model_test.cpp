#include "cluster/app_model.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace simmr::cluster {
namespace {

TEST(JobSpec, NumMapsFromBlockCount) {
  JobSpec spec;
  spec.input_mb = 640.0;
  EXPECT_EQ(spec.NumMaps(64.0), 10);
  spec.input_mb = 641.0;  // partial last block adds a map
  EXPECT_EQ(spec.NumMaps(64.0), 11);
  spec.input_mb = 1.0;
  EXPECT_EQ(spec.NumMaps(64.0), 1);
}

TEST(JobSpec, IntermediateScalesWithSelectivity) {
  JobSpec spec;
  spec.input_mb = 1000.0;
  spec.app.map_selectivity = 0.4;
  EXPECT_DOUBLE_EQ(spec.IntermediateMb(), 400.0);
}

TEST(JobSpec, FullNameCombinesAppAndDataset) {
  JobSpec spec;
  spec.app.name = "Sort";
  spec.dataset_label = "rand-16GB";
  EXPECT_EQ(spec.FullName(), "Sort/rand-16GB");
}

TEST(AppCatalog, AllSixPaperApplicationsExist) {
  const std::set<std::string> names = {
      apps::WordCount().name, apps::WikiTrends().name, apps::Twitter().name,
      apps::Sort().name,      apps::Tfidf().name,      apps::Bayes().name};
  EXPECT_EQ(names.size(), 6u);
  EXPECT_TRUE(names.contains("WordCount"));
  EXPECT_TRUE(names.contains("Sort"));
}

TEST(AppCatalog, SortShufflesEveryByte) {
  EXPECT_DOUBLE_EQ(apps::Sort().map_selectivity, 1.0);
}

TEST(AppCatalog, WikiTrendsHasHeaviestMaps) {
  const double wt = apps::WikiTrends().map_cost_s_per_mb;
  EXPECT_GT(wt, apps::WordCount().map_cost_s_per_mb);
  EXPECT_GT(wt, apps::Sort().map_cost_s_per_mb);
  EXPECT_GT(wt, apps::Twitter().map_cost_s_per_mb);
  EXPECT_GT(wt, apps::Tfidf().map_cost_s_per_mb);
  EXPECT_GT(wt, apps::Bayes().map_cost_s_per_mb);
}

TEST(AppCatalog, CostsArePositive) {
  for (const AppModel& m :
       {apps::WordCount(), apps::WikiTrends(), apps::Twitter(), apps::Sort(),
        apps::Tfidf(), apps::Bayes()}) {
    EXPECT_GT(m.map_cost_s_per_mb, 0.0) << m.name;
    EXPECT_GT(m.map_selectivity, 0.0) << m.name;
    EXPECT_GT(m.merge_cost_s_per_mb, 0.0) << m.name;
    EXPECT_GT(m.reduce_cost_s_per_mb, 0.0) << m.name;
    EXPECT_GE(m.map_startup_s, 0.0) << m.name;
    EXPECT_GT(m.map_sigma, 0.0) << m.name;
  }
}

TEST(Suites, ValidationSuiteHasOneJobPerApp) {
  const auto suite = ValidationSuite();
  ASSERT_EQ(suite.size(), 6u);
  std::set<std::string> names;
  for (const auto& spec : suite) names.insert(spec.app.name);
  EXPECT_EQ(names.size(), 6u);
}

TEST(Suites, FullSuiteHasThreeDatasetsPerApp) {
  const auto suite = FullWorkloadSuite();
  ASSERT_EQ(suite.size(), 18u);
  std::map<std::string, int> counts;
  for (const auto& spec : suite) ++counts[spec.app.name];
  for (const auto& [name, count] : counts) {
    EXPECT_EQ(count, 3) << name;
  }
}

TEST(Suites, DatasetSizesMatchSectionFourC) {
  // Sort runs on 16/32/64 GB of random data; Twitter on 12/18/25 GB.
  const auto suite = FullWorkloadSuite();
  std::set<double> sort_gb, twitter_gb;
  for (const auto& spec : suite) {
    if (spec.app.name == "Sort") sort_gb.insert(spec.input_mb / 1024.0);
    if (spec.app.name == "Twitter") twitter_gb.insert(spec.input_mb / 1024.0);
  }
  EXPECT_EQ(sort_gb, (std::set<double>{16.0, 32.0, 64.0}));
  EXPECT_EQ(twitter_gb, (std::set<double>{12.0, 18.0, 25.0}));
}

TEST(Suites, SectionTwoExampleHas200MapsAnd256Reduces) {
  const JobSpec spec = SectionTwoExample();
  EXPECT_EQ(spec.NumMaps(64.0), 200);
  EXPECT_EQ(spec.num_reduces, 256);
  EXPECT_EQ(spec.app.name, "WordCount");
}

}  // namespace
}  // namespace simmr::cluster
