// Data-locality modeling tests: replica placement, locality-aware task
// selection, read penalties, and the end-to-end claim that SimMR's
// profile-based replay absorbs locality effects.
#include <gtest/gtest.h>

#include <set>

#include "cluster/cluster_sim.h"
#include "core/simmr.h"
#include "sched/fifo.h"
#include "trace/mr_profiler.h"

namespace simmr::cluster {
namespace {

ClusterConfig Config(int nodes = 8, bool locality = true) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.model_locality = locality;
  return cfg;
}

JobRuntime MakeJob(const ClusterConfig& cfg, int blocks = 8,
                   std::uint64_t seed = 3) {
  SubmittedJob submission;
  submission.spec.app = apps::WordCount();
  submission.spec.input_mb = blocks * 64.0;
  submission.spec.num_reduces = 2;
  return JobRuntime(0, submission, cfg, Rng(seed));
}

TEST(Locality, ReplicasAreDistinctAndInRange) {
  const ClusterConfig cfg = Config(8);
  const JobRuntime job = MakeJob(cfg, 20);
  for (const auto& m : job.maps()) {
    ASSERT_EQ(m.replicas.size(), 3u);
    std::set<NodeId> unique(m.replicas.begin(), m.replicas.end());
    EXPECT_EQ(unique.size(), 3u);
    for (const NodeId r : m.replicas) {
      EXPECT_GE(r, 0);
      EXPECT_LT(r, 8);
    }
  }
}

TEST(Locality, TinyClusterClampsReplication) {
  const ClusterConfig cfg = Config(2);
  const JobRuntime job = MakeJob(cfg);
  for (const auto& m : job.maps()) {
    EXPECT_EQ(m.replicas.size(), 2u);
  }
}

TEST(Locality, PenaltyZeroWhenDisabled) {
  ClusterConfig cfg = Config(8, /*locality=*/false);
  const JobRuntime job = MakeJob(cfg);
  for (NodeId n = 0; n < 8; ++n) {
    EXPECT_DOUBLE_EQ(MapReadPenalty(cfg, job.maps()[0], n), 0.0);
  }
}

TEST(Locality, PenaltyTiersNodeRackRemote) {
  ClusterConfig cfg = Config(8);
  cfg.num_racks = 2;
  cfg.remote_read_mbps = 32.0;
  MapTaskRt m;
  m.input_mb = 64.0;
  m.replicas = {0, 2};  // both in rack 0 (even nodes)
  EXPECT_DOUBLE_EQ(MapReadPenalty(cfg, m, 0), 0.0);        // node-local
  EXPECT_DOUBLE_EQ(MapReadPenalty(cfg, m, 4), 1.0);        // rack-local: 64/(2*32)
  EXPECT_DOUBLE_EQ(MapReadPenalty(cfg, m, 1), 2.0);        // cross-rack: 64/32
}

TEST(Locality, PreferLocalPicksNodeLocalFirst) {
  const ClusterConfig cfg = Config(8);
  JobRuntime job = MakeJob(cfg, 8);
  // Find a node hosting some non-front task's replica.
  const NodeId node = job.maps()[5].replicas[0];
  const TaskIndex picked = job.PopPendingMapPreferLocal(node, cfg.num_racks);
  const auto& replicas = job.maps()[picked].replicas;
  EXPECT_NE(std::find(replicas.begin(), replicas.end(), node),
            replicas.end());
}

TEST(Locality, PreferLocalFallsBackToFront) {
  ClusterConfig cfg = Config(4);
  JobRuntime job = MakeJob(cfg, 3);
  // Strip all replicas so nothing is local anywhere: front task pops.
  for (auto& m : job.maps()) m.replicas = {99};  // unreachable node
  EXPECT_EQ(job.PopPendingMapPreferLocal(0, 1), 0);
  EXPECT_EQ(job.PopPendingMapPreferLocal(0, 1), 1);
}

TEST(Locality, RunsCompleteAndSlowDownVsNoLocality) {
  JobSpec spec;
  spec.app = apps::WordCount();
  spec.dataset_label = "loc";
  spec.input_mb = 32 * 64.0;
  spec.num_reduces = 4;
  const std::vector<SubmittedJob> jobs{{spec, 0.0, 0.0}};

  TestbedOptions off;
  off.config = Config(8, false);
  off.seed = 5;
  TestbedOptions on;
  on.config = Config(8, true);
  on.config.remote_read_mbps = 10.0;  // make misses expensive
  on.seed = 5;

  const double t_off = RunTestbed(jobs, off).log.jobs()[0].finish_time;
  const double t_on = RunTestbed(jobs, on).log.jobs()[0].finish_time;
  // Penalties only ever add time.
  EXPECT_GE(t_on, t_off - 1e-6);
}

TEST(Locality, ProfileAbsorbsLocalityEffects) {
  // The paper's abstraction: locality shows up as longer map durations in
  // the trace, so the replay stays accurate even though SimMR itself has
  // no locality model.
  JobSpec spec;
  spec.app = apps::Sort();
  spec.dataset_label = "loc";
  spec.input_mb = 64 * 64.0;
  spec.num_reduces = 16;
  const std::vector<SubmittedJob> jobs{{spec, 0.0, 0.0}};
  TestbedOptions opts;
  opts.config = Config(16, true);
  opts.config.remote_read_mbps = 20.0;
  opts.seed = 9;
  const auto testbed = RunTestbed(jobs, opts);
  const double actual =
      testbed.log.jobs()[0].finish_time - testbed.log.jobs()[0].submit_time;

  core::SimConfig cfg;
  cfg.map_slots = 16;
  cfg.reduce_slots = 16;
  sched::FifoPolicy fifo;
  trace::WorkloadTrace w(1);
  w[0].profile = trace::BuildAllProfiles(testbed.log)[0];
  const double simulated =
      core::Replay(w, fifo, cfg).jobs[0].CompletionTime();
  EXPECT_NEAR(simulated, actual, actual * 0.06);
}

TEST(Locality, DeterministicReplicaPlacement) {
  const ClusterConfig cfg = Config(8);
  const JobRuntime a = MakeJob(cfg, 8, 11);
  const JobRuntime b = MakeJob(cfg, 8, 11);
  for (int i = 0; i < a.num_maps(); ++i) {
    EXPECT_EQ(a.maps()[i].replicas, b.maps()[i].replicas);
  }
}

}  // namespace
}  // namespace simmr::cluster
