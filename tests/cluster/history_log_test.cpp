#include "cluster/history_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

namespace simmr::cluster {
namespace {

HistoryLog MakeSampleLog() {
  HistoryLog log;
  JobRecord j;
  j.job = 0;
  j.app_name = "WordCount";
  j.dataset = "wiki-40GB";
  j.num_maps = 2;
  j.num_reduces = 1;
  j.input_mb = 128.0;
  j.submit_time = 0.0;
  j.launch_time = 1.5;
  j.finish_time = 100.25;
  j.maps_done_time = 60.125;
  j.deadline = 0.0;
  log.AddJob(j);

  TaskAttemptRecord m;
  m.job = 0;
  m.kind = TaskKind::kMap;
  m.index = 0;
  m.node = 3;
  m.start = 1.5;
  m.shuffle_end = 1.5;
  m.end = 30.75;
  m.input_mb = 64.0;
  log.AddTask(m);

  TaskAttemptRecord r;
  r.job = 0;
  r.kind = TaskKind::kReduce;
  r.index = 0;
  r.node = 5;
  r.start = 5.0;
  r.shuffle_end = 70.5;
  r.end = 100.25;
  r.input_mb = 19.2;
  log.AddTask(r);
  return log;
}

TEST(HistoryLog, RoundTripThroughStream) {
  const HistoryLog original = MakeSampleLog();
  std::stringstream buffer;
  original.Write(buffer);
  const HistoryLog loaded = HistoryLog::Read(buffer);

  ASSERT_EQ(loaded.jobs().size(), 1u);
  ASSERT_EQ(loaded.tasks().size(), 2u);
  const JobRecord& j = loaded.jobs()[0];
  EXPECT_EQ(j.app_name, "WordCount");
  EXPECT_EQ(j.dataset, "wiki-40GB");
  EXPECT_EQ(j.num_maps, 2);
  EXPECT_DOUBLE_EQ(j.finish_time, 100.25);
  EXPECT_DOUBLE_EQ(j.maps_done_time, 60.125);

  const TaskAttemptRecord& r = loaded.tasks()[1];
  EXPECT_EQ(r.kind, TaskKind::kReduce);
  EXPECT_EQ(r.node, 5);
  EXPECT_DOUBLE_EQ(r.shuffle_end, 70.5);
}

TEST(HistoryLog, RoundTripThroughFile) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "simmr_histlog_test.log";
  const HistoryLog original = MakeSampleLog();
  original.WriteFile(path.string());
  const HistoryLog loaded = HistoryLog::ReadFile(path.string());
  EXPECT_EQ(loaded.jobs().size(), original.jobs().size());
  EXPECT_EQ(loaded.tasks().size(), original.tasks().size());
  fs::remove(path);
}

TEST(HistoryLog, TasksOfFiltersByJob) {
  HistoryLog log = MakeSampleLog();
  TaskAttemptRecord other;
  other.job = 7;
  other.kind = TaskKind::kMap;
  log.AddTask(other);
  EXPECT_EQ(log.TasksOf(0).size(), 2u);
  EXPECT_EQ(log.TasksOf(7).size(), 1u);
  EXPECT_TRUE(log.TasksOf(99).empty());
}

TEST(HistoryLog, JobOfThrowsForUnknownId) {
  const HistoryLog log = MakeSampleLog();
  EXPECT_NO_THROW(log.JobOf(0));
  EXPECT_THROW(log.JobOf(42), std::out_of_range);
}

TEST(HistoryLog, ReadRejectsBadMagic) {
  std::stringstream buffer("NOT-A-LOG\nJOB\t0");
  EXPECT_THROW(HistoryLog::Read(buffer), std::runtime_error);
}

TEST(HistoryLog, ReadRejectsTruncatedJobLine) {
  std::stringstream buffer("SIMMR-HISTORY-V1\nJOB\t0\tWordCount\n");
  EXPECT_THROW(HistoryLog::Read(buffer), std::runtime_error);
}

TEST(HistoryLog, ReadRejectsBadTaskKind) {
  std::stringstream buffer(
      "SIMMR-HISTORY-V1\n"
      "TASK\t0\tCOMBINE\t0\t1\t0\t0\t1\t2\t1\n");
  EXPECT_THROW(HistoryLog::Read(buffer), std::runtime_error);
}

TEST(HistoryLog, ReadRejectsNonNumericField) {
  std::stringstream buffer(
      "SIMMR-HISTORY-V1\n"
      "TASK\t0\tMAP\t0\t1\tabc\t0\t1\t2\t1\n");
  EXPECT_THROW(HistoryLog::Read(buffer), std::runtime_error);
}

TEST(HistoryLog, ReadRejectsUnknownRecordType) {
  std::stringstream buffer("SIMMR-HISTORY-V1\nWEIRD\tstuff\n");
  EXPECT_THROW(HistoryLog::Read(buffer), std::runtime_error);
}

TEST(HistoryLog, ReadFileMissingThrows) {
  EXPECT_THROW(HistoryLog::ReadFile("/nonexistent/simmr.log"),
               std::runtime_error);
}

TEST(HistoryLog, EmptyLogRoundTrips) {
  HistoryLog empty;
  std::stringstream buffer;
  empty.Write(buffer);
  const HistoryLog loaded = HistoryLog::Read(buffer);
  EXPECT_TRUE(loaded.jobs().empty());
  EXPECT_TRUE(loaded.tasks().empty());
}

TEST(HistoryLog, TimestampPrecisionSurvivesRoundTrip) {
  HistoryLog log;
  TaskAttemptRecord t;
  t.job = 0;
  t.start = 12345.678901;
  t.shuffle_end = 12345.678901;
  t.end = 99999.123456;
  log.AddTask(t);
  std::stringstream buffer;
  log.Write(buffer);
  const HistoryLog loaded = HistoryLog::Read(buffer);
  EXPECT_NEAR(loaded.tasks()[0].start, 12345.678901, 1e-4);
  EXPECT_NEAR(loaded.tasks()[0].end, 99999.123456, 1e-4);
}

}  // namespace
}  // namespace simmr::cluster
