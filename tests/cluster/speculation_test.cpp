// Speculative-execution tests. The paper ran its cluster with speculation
// disabled ("it did not lead to any significant improvements"); the
// emulator implements Hadoop's mechanism so that claim can be examined.
#include <gtest/gtest.h>

#include "cluster/cluster_sim.h"
#include "trace/mr_profiler.h"

namespace simmr::cluster {
namespace {

JobSpec StragglySpec(int blocks = 32, int reduces = 4) {
  JobSpec spec;
  spec.app = apps::WordCount();
  spec.app.map_sigma = 0.6;  // heavy-tailed task durations: stragglers
  spec.dataset_label = "straggly";
  spec.input_mb = blocks * 64.0;
  spec.num_reduces = reduces;
  return spec;
}

TestbedOptions Options(bool speculation, int nodes = 8,
                       double threshold = 1.3) {
  TestbedOptions opts;
  opts.config.num_nodes = nodes;
  opts.config.speculative_execution = speculation;
  opts.config.speculation_slowness_threshold = threshold;
  opts.config.node_speed_sigma = 0.15;  // heterogeneous nodes
  opts.seed = 17;
  return opts;
}

TEST(Speculation, DisabledByDefaultProducesNoBackups) {
  const std::vector<SubmittedJob> jobs{{StragglySpec(), 0.0, 0.0}};
  TestbedOptions opts = Options(false);
  const auto result = RunTestbed(jobs, opts);
  int attempts = 0;
  for (const auto& t : result.log.tasks()) {
    if (t.kind == TaskKind::kMap) ++attempts;
  }
  EXPECT_EQ(attempts, 32);  // exactly one attempt per map
}

TEST(Speculation, BackupsLaunchForStragglers) {
  const std::vector<SubmittedJob> jobs{{StragglySpec(), 0.0, 0.0}};
  const auto result = RunTestbed(jobs, Options(true));
  int map_attempts = 0, killed = 0;
  for (const auto& t : result.log.tasks()) {
    if (t.kind != TaskKind::kMap) continue;
    ++map_attempts;
    if (!t.succeeded) ++killed;
  }
  EXPECT_GT(map_attempts, 32);  // some tasks ran twice
  EXPECT_EQ(map_attempts - killed, 32);  // exactly one winner per task
}

TEST(Speculation, NeverHurtsWithFreeSlots) {
  // One job whose last map wave leaves idle slots: speculating the tail
  // stragglers should not lengthen the job (and usually shortens it).
  const std::vector<SubmittedJob> jobs{{StragglySpec(20, 2), 0.0, 0.0}};
  const double off =
      RunTestbed(jobs, Options(false)).log.jobs()[0].finish_time;
  const double on =
      RunTestbed(jobs, Options(true)).log.jobs()[0].finish_time;
  EXPECT_LE(on, off + 1e-6);
}

TEST(Speculation, AllJobsCompleteWithSpeculationAndFailures) {
  std::vector<SubmittedJob> jobs{{StragglySpec(24, 4), 0.0, 0.0},
                                 {StragglySpec(12, 2), 20.0, 0.0}};
  TestbedOptions opts = Options(true);
  opts.config.task_failure_prob = 0.15;
  const auto result = RunTestbed(jobs, opts);
  ASSERT_EQ(result.log.jobs().size(), 2u);
  for (const auto& j : result.log.jobs()) {
    EXPECT_GT(j.finish_time, j.submit_time);
  }
}

TEST(Speculation, ProfilesRemainValid) {
  const std::vector<SubmittedJob> jobs{{StragglySpec(), 0.0, 0.0}};
  const auto result = RunTestbed(jobs, Options(true));
  const auto profile = trace::BuildProfile(result.log, 0);
  EXPECT_TRUE(profile.Validate().empty()) << profile.Validate();
  // Winners only: one duration per task.
  EXPECT_EQ(static_cast<int>(profile.map_durations.size()), 32);
}

TEST(Speculation, DeterministicGivenSeed) {
  const std::vector<SubmittedJob> jobs{{StragglySpec(), 0.0, 0.0}};
  const auto a = RunTestbed(jobs, Options(true));
  const auto b = RunTestbed(jobs, Options(true));
  EXPECT_EQ(a.log.tasks().size(), b.log.tasks().size());
  EXPECT_DOUBLE_EQ(a.log.jobs()[0].finish_time, b.log.jobs()[0].finish_time);
}

TEST(Speculation, HigherThresholdSpeculatesLess) {
  const std::vector<SubmittedJob> jobs{{StragglySpec(), 0.0, 0.0}};
  const auto eager = RunTestbed(jobs, Options(true, 8, 1.1));
  const auto lazy = RunTestbed(jobs, Options(true, 8, 3.0));
  const auto count_attempts = [](const TestbedResult& r) {
    int n = 0;
    for (const auto& t : r.log.tasks()) {
      if (t.kind == TaskKind::kMap) ++n;
    }
    return n;
  };
  EXPECT_GE(count_attempts(eager), count_attempts(lazy));
}

}  // namespace
}  // namespace simmr::cluster
