// Speculative-execution tests. The paper ran its cluster with speculation
// disabled ("it did not lead to any significant improvements"); the
// emulator implements Hadoop's mechanism so that claim can be examined.
#include <gtest/gtest.h>

#include <set>

#include "cluster/cluster_sim.h"
#include "fault/fault_plan.h"
#include "trace/mr_profiler.h"

namespace simmr::cluster {
namespace {

JobSpec StragglySpec(int blocks = 32, int reduces = 4) {
  JobSpec spec;
  spec.app = apps::WordCount();
  spec.app.map_sigma = 0.6;  // heavy-tailed task durations: stragglers
  spec.dataset_label = "straggly";
  spec.input_mb = blocks * 64.0;
  spec.num_reduces = reduces;
  return spec;
}

TestbedOptions Options(bool speculation, int nodes = 8,
                       double threshold = 1.3) {
  TestbedOptions opts;
  opts.config.num_nodes = nodes;
  opts.config.speculative_execution = speculation;
  opts.config.speculation_slowness_threshold = threshold;
  opts.config.node_speed_sigma = 0.15;  // heterogeneous nodes
  opts.seed = 17;
  return opts;
}

TEST(Speculation, DisabledByDefaultProducesNoBackups) {
  const std::vector<SubmittedJob> jobs{{StragglySpec(), 0.0, 0.0}};
  TestbedOptions opts = Options(false);
  const auto result = RunTestbed(jobs, opts);
  int attempts = 0;
  for (const auto& t : result.log.tasks()) {
    if (t.kind == TaskKind::kMap) ++attempts;
  }
  EXPECT_EQ(attempts, 32);  // exactly one attempt per map
}

TEST(Speculation, BackupsLaunchForStragglers) {
  const std::vector<SubmittedJob> jobs{{StragglySpec(), 0.0, 0.0}};
  const auto result = RunTestbed(jobs, Options(true));
  int map_attempts = 0, killed = 0;
  for (const auto& t : result.log.tasks()) {
    if (t.kind != TaskKind::kMap) continue;
    ++map_attempts;
    if (!t.succeeded) ++killed;
  }
  EXPECT_GT(map_attempts, 32);  // some tasks ran twice
  EXPECT_EQ(map_attempts - killed, 32);  // exactly one winner per task
}

TEST(Speculation, NeverHurtsWithFreeSlots) {
  // One job whose last map wave leaves idle slots: speculating the tail
  // stragglers should not lengthen the job (and usually shortens it).
  const std::vector<SubmittedJob> jobs{{StragglySpec(20, 2), 0.0, 0.0}};
  const double off =
      RunTestbed(jobs, Options(false)).log.jobs()[0].finish_time;
  const double on =
      RunTestbed(jobs, Options(true)).log.jobs()[0].finish_time;
  EXPECT_LE(on, off + 1e-6);
}

TEST(Speculation, AllJobsCompleteWithSpeculationAndFailures) {
  std::vector<SubmittedJob> jobs{{StragglySpec(24, 4), 0.0, 0.0},
                                 {StragglySpec(12, 2), 20.0, 0.0}};
  TestbedOptions opts = Options(true);
  opts.config.task_failure_prob = 0.15;
  const auto result = RunTestbed(jobs, opts);
  ASSERT_EQ(result.log.jobs().size(), 2u);
  for (const auto& j : result.log.jobs()) {
    EXPECT_GT(j.finish_time, j.submit_time);
  }
}

TEST(Speculation, ProfilesRemainValid) {
  const std::vector<SubmittedJob> jobs{{StragglySpec(), 0.0, 0.0}};
  const auto result = RunTestbed(jobs, Options(true));
  const auto profile = trace::BuildProfile(result.log, 0);
  EXPECT_TRUE(profile.Validate().empty()) << profile.Validate();
  // Winners only: one duration per task.
  EXPECT_EQ(static_cast<int>(profile.map_durations.size()), 32);
}

TEST(Speculation, DeterministicGivenSeed) {
  const std::vector<SubmittedJob> jobs{{StragglySpec(), 0.0, 0.0}};
  const auto a = RunTestbed(jobs, Options(true));
  const auto b = RunTestbed(jobs, Options(true));
  EXPECT_EQ(a.log.tasks().size(), b.log.tasks().size());
  EXPECT_DOUBLE_EQ(a.log.jobs()[0].finish_time, b.log.jobs()[0].finish_time);
}

// --- speculation x task failure / fault injection -------------------------
//
// Backups, probabilistic attempt failures, and deterministic fault plans
// all create extra attempts for the same task; these tests pin down that
// the accounting stays consistent when the mechanisms overlap.

TEST(Speculation, FailuresStillYieldOneWinnerPerTask) {
  const std::vector<SubmittedJob> jobs{{StragglySpec(24, 4), 0.0, 0.0}};
  TestbedOptions opts = Options(true);
  opts.config.task_failure_prob = 0.2;
  const auto result = RunTestbed(jobs, opts);
  int map_winners = 0, reduce_winners = 0;
  for (const auto& t : result.log.tasks()) {
    if (!t.succeeded) continue;
    if (t.kind == TaskKind::kMap) ++map_winners;
    else ++reduce_winners;
  }
  // Failed attempts retry and speculated losers are killed, but each task
  // must succeed exactly once.
  EXPECT_EQ(map_winners, 24);
  EXPECT_EQ(reduce_winners, 4);
}

TEST(Speculation, FailureOfOriginalLetsBackupWin) {
  // With aggressive speculation and a high failure rate, some task's
  // first attempt fails while a backup is in flight; the job must still
  // finish with valid profiles (winners only, one duration per task).
  const std::vector<SubmittedJob> jobs{{StragglySpec(24, 4), 0.0, 0.0}};
  TestbedOptions opts = Options(true, 8, 1.1);
  opts.config.task_failure_prob = 0.3;
  const auto result = RunTestbed(jobs, opts);
  const auto profile = trace::BuildProfile(result.log, 0);
  EXPECT_TRUE(profile.Validate().empty()) << profile.Validate();
  EXPECT_EQ(static_cast<int>(profile.map_durations.size()), 24);
}

TEST(Speculation, DeterministicUnderFailures) {
  // Retry draws come from per-attempt keyed RNG streams, so the whole
  // speculation x failure interleaving replays bit-identically.
  const std::vector<SubmittedJob> jobs{{StragglySpec(24, 4), 0.0, 0.0}};
  TestbedOptions opts = Options(true);
  opts.config.task_failure_prob = 0.25;
  const auto a = RunTestbed(jobs, opts);
  const auto b = RunTestbed(jobs, opts);
  ASSERT_EQ(a.log.tasks().size(), b.log.tasks().size());
  for (std::size_t i = 0; i < a.log.tasks().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.log.tasks()[i].end, b.log.tasks()[i].end);
    EXPECT_EQ(a.log.tasks()[i].node, b.log.tasks()[i].node);
    EXPECT_EQ(a.log.tasks()[i].succeeded, b.log.tasks()[i].succeeded);
  }
}

TEST(Speculation, SurvivesNodeCrashFaultPlan) {
  // A deterministic node crash under speculation: stranded originals and
  // backups are reaped together, and every task still succeeds once.
  const std::vector<SubmittedJob> jobs{{StragglySpec(24, 4), 0.0, 0.0}};
  fault::FaultPlan plan;
  plan.num_nodes = 8;
  plan.map_slots_per_node = 2;
  plan.reduce_slots_per_node = 2;
  fault::FaultAction crash;
  crash.kind = fault::FaultActionKind::kNodeCrash;
  crash.time = 30.0;
  crash.node = 2;
  plan.actions = {crash};
  TestbedOptions opts = Options(true);
  opts.config.tasktracker_expiry_interval = 10.0;
  opts.fault_plan = &plan;
  const auto result = RunTestbed(jobs, opts);
  ASSERT_EQ(result.log.jobs().size(), 1u);
  EXPECT_GT(result.log.jobs()[0].finish_time, 0.0);
  // A map that completed on node 2 before the crash legitimately succeeds
  // twice (its output was lost and re-executed), so count distinct winning
  // task indices, not winning attempts.
  std::set<TaskIndex> won;
  for (const auto& t : result.log.tasks())
    if (t.kind == TaskKind::kMap && t.succeeded) won.insert(t.index);
  EXPECT_EQ(static_cast<int>(won.size()), 24);
  // Nothing may ever be scheduled on the dead node after the crash.
  for (const auto& t : result.log.tasks())
    if (t.node == 2) EXPECT_LE(t.start, 30.0);
}

TEST(Speculation, TargetedKillOfSpeculatedTaskKeepsAccounting) {
  // Kill a map's attempts mid-run via the fault plan while speculation is
  // eager enough to also race backups for it: the task re-runs and wins
  // exactly once, and profiles stay valid.
  const std::vector<SubmittedJob> jobs{{StragglySpec(24, 4), 0.0, 0.0}};
  fault::FaultPlan plan;
  fault::FaultAction kill;
  kill.kind = fault::FaultActionKind::kKillAttempt;
  kill.time = 25.0;
  kill.job = 0;
  kill.task_kind = obs::TaskKind::kMap;
  kill.index = 3;
  plan.actions = {kill};
  TestbedOptions opts = Options(true, 8, 1.1);
  opts.fault_plan = &plan;
  const auto result = RunTestbed(jobs, opts);
  const auto profile = trace::BuildProfile(result.log, 0);
  EXPECT_TRUE(profile.Validate().empty()) << profile.Validate();
  EXPECT_EQ(static_cast<int>(profile.map_durations.size()), 24);
  int winners_of_3 = 0;
  for (const auto& t : result.log.tasks())
    if (t.kind == TaskKind::kMap && t.index == 3 && t.succeeded)
      ++winners_of_3;
  EXPECT_EQ(winners_of_3, 1);
}

TEST(Speculation, HigherThresholdSpeculatesLess) {
  const std::vector<SubmittedJob> jobs{{StragglySpec(), 0.0, 0.0}};
  const auto eager = RunTestbed(jobs, Options(true, 8, 1.1));
  const auto lazy = RunTestbed(jobs, Options(true, 8, 3.0));
  const auto count_attempts = [](const TestbedResult& r) {
    int n = 0;
    for (const auto& t : r.log.tasks()) {
      if (t.kind == TaskKind::kMap) ++n;
    }
    return n;
  };
  EXPECT_GE(count_attempts(eager), count_attempts(lazy));
}

}  // namespace
}  // namespace simmr::cluster
