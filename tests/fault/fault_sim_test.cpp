// Cross-simulator fault-injection behaviour: the same simmr.faultplan.v1
// actions must be deterministic in all three simulators, and each
// simulator's documented abstraction (engine = slot deltas, testbed =
// expiry + lost-map re-execution, Mumak = silenced heartbeats) must hold.
#include <gtest/gtest.h>

#include <set>

#include "cluster/app_model.h"
#include "cluster/cluster_sim.h"
#include "core/engine.h"
#include "core/simmr.h"
#include "fault/fault_gen.h"
#include "fault/fault_plan.h"
#include "mumak/mumak_sim.h"
#include "obs/observer.h"
#include "sched/fifo.h"

namespace simmr {
namespace {

/// Counts OnFaultEvent callbacks per kind.
class FaultRecorder final : public obs::SimObserver {
 public:
  void OnFaultEvent(SimTime /*now*/, obs::FaultEventKind kind,
                    std::int32_t /*node*/, std::int32_t /*job*/,
                    obs::TaskKind /*task_kind*/,
                    std::int32_t /*index*/) override {
    ++counts_[static_cast<std::size_t>(kind)];
  }
  int Count(obs::FaultEventKind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }

 private:
  int counts_[4] = {0, 0, 0, 0};
};

fault::FaultAction NodeAction(fault::FaultActionKind kind, double time,
                              std::int32_t node) {
  fault::FaultAction a;
  a.kind = kind;
  a.time = time;
  a.node = node;
  return a;
}

fault::FaultAction KillAction(double time, std::int32_t job,
                              obs::TaskKind task_kind, std::int32_t index) {
  fault::FaultAction a;
  a.kind = fault::FaultActionKind::kKillAttempt;
  a.time = time;
  a.job = job;
  a.task_kind = task_kind;
  a.index = index;
  return a;
}

// --- generator ------------------------------------------------------------

TEST(FaultGen, SameSeedSamePlan) {
  const fault::FaultGenOptions opts;
  const fault::FaultPlan a = fault::GenerateFaultPlan(99, opts);
  const fault::FaultPlan b = fault::GenerateFaultPlan(99, opts);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.seed, 99u);
}

TEST(FaultGen, SeedsProduceDistinctPlans) {
  const fault::FaultGenOptions opts;
  bool any_differ = false;
  const fault::FaultPlan first = fault::GenerateFaultPlan(0, opts);
  for (std::uint64_t seed = 1; seed < 8 && !any_differ; ++seed)
    any_differ = !(fault::GenerateFaultPlan(seed, opts) == first);
  EXPECT_TRUE(any_differ);
}

TEST(FaultGen, EveryPlanValidatesAndSparesOneNode) {
  const fault::FaultGenOptions opts;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const fault::FaultPlan plan = fault::GenerateFaultPlan(seed, opts);
    EXPECT_EQ(fault::ValidateFaultPlan(plan), "") << "seed " << seed;
    std::set<std::int32_t> crashed;
    for (const auto& a : plan.actions)
      if (a.kind == fault::FaultActionKind::kNodeCrash) crashed.insert(a.node);
    EXPECT_LT(static_cast<std::int32_t>(crashed.size()), plan.num_nodes)
        << "seed " << seed;
  }
}

// --- engine (slot-level) --------------------------------------------------

/// 10 s maps, 5 s typical shuffles, 2 s reduces.
trace::JobProfile UniformProfile(int num_maps, int num_reduces) {
  trace::JobProfile p;
  p.app_name = "uniform";
  p.num_maps = num_maps;
  p.num_reduces = num_reduces;
  p.map_durations.assign(num_maps, 10.0);
  p.typical_shuffle_durations.assign(num_reduces, 5.0);
  p.reduce_durations.assign(num_reduces, 2.0);
  return p;
}

trace::WorkloadTrace SingleJob(int num_maps, int num_reduces) {
  trace::WorkloadTrace w(1);
  w[0].profile = UniformProfile(num_maps, num_reduces);
  return w;
}

/// Geometry matching a 4+2-slot engine: 2 nodes x (2 map + 1 reduce).
fault::FaultPlan EnginePlan() {
  fault::FaultPlan plan;
  plan.num_nodes = 2;
  plan.map_slots_per_node = 2;
  plan.reduce_slots_per_node = 1;
  return plan;
}

core::SimConfig EngineConfig(const fault::FaultPlan* plan) {
  core::SimConfig cfg;
  cfg.map_slots = 4;
  cfg.reduce_slots = 2;
  cfg.fault_plan = plan;
  return cfg;
}

TEST(EngineFaults, CrashShrinksCapacityAndExtendsMakespan) {
  sched::FifoPolicy fifo;
  const double clean =
      core::Replay(SingleJob(16, 2), fifo, EngineConfig(nullptr))
          .jobs[0]
          .CompletionTime();

  fault::FaultPlan plan = EnginePlan();
  plan.actions = {NodeAction(fault::FaultActionKind::kNodeCrash, 15.0, 0)};
  FaultRecorder recorder;
  core::SimConfig cfg = EngineConfig(&plan);
  cfg.observer = &recorder;
  const auto faulted = core::Replay(SingleJob(16, 2), fifo, cfg);
  ASSERT_EQ(faulted.jobs.size(), 1u);
  EXPECT_GT(faulted.jobs[0].CompletionTime(), clean);
  EXPECT_EQ(recorder.Count(obs::FaultEventKind::kNodeLost), 1);
  // The crashed node's 2 map slots plus its reduce slot (holding a
  // first-wave filler launched once slowstart crossed at t=10) were all
  // occupied at t=15; each lost slot kills its attempt.
  EXPECT_EQ(recorder.Count(obs::FaultEventKind::kAttemptKilled), 3);
}

TEST(EngineFaults, RestoreReturnsCapacity) {
  sched::FifoPolicy fifo;
  fault::FaultPlan crash_only = EnginePlan();
  crash_only.actions = {
      NodeAction(fault::FaultActionKind::kNodeCrash, 15.0, 0)};
  const double down_forever =
      core::Replay(SingleJob(16, 2), fifo, EngineConfig(&crash_only))
          .jobs[0]
          .CompletionTime();

  fault::FaultPlan plan = EnginePlan();
  plan.actions = {NodeAction(fault::FaultActionKind::kNodeCrash, 15.0, 0),
                  NodeAction(fault::FaultActionKind::kNodeRestore, 25.0, 0)};
  FaultRecorder recorder;
  core::SimConfig cfg = EngineConfig(&plan);
  cfg.observer = &recorder;
  const auto restored = core::Replay(SingleJob(16, 2), fifo, cfg);
  EXPECT_LT(restored.jobs[0].CompletionTime(), down_forever);
  EXPECT_EQ(recorder.Count(obs::FaultEventKind::kNodeRestored), 1);
}

TEST(EngineFaults, KillAttemptRequeuesAndStillCompletes) {
  sched::FifoPolicy fifo;
  const double clean =
      core::Replay(SingleJob(8, 2), fifo, EngineConfig(nullptr))
          .jobs[0]
          .CompletionTime();

  fault::FaultPlan plan;  // geometry-free: kills only
  plan.actions = {KillAction(5.0, 0, obs::TaskKind::kMap, 0)};
  FaultRecorder recorder;
  core::SimConfig cfg = EngineConfig(&plan);
  cfg.observer = &recorder;
  const auto faulted = core::Replay(SingleJob(8, 2), fifo, cfg);
  EXPECT_EQ(recorder.Count(obs::FaultEventKind::kAttemptKilled), 1);
  // The killed map's work is redone from scratch, so completion moves out.
  EXPECT_GT(faulted.jobs[0].CompletionTime(), clean);
}

TEST(EngineFaults, KillOfNeverRunningAttemptIsNoOp) {
  sched::FifoPolicy fifo;
  const double clean =
      core::Replay(SingleJob(8, 2), fifo, EngineConfig(nullptr))
          .jobs[0]
          .CompletionTime();
  fault::FaultPlan plan;
  plan.actions = {KillAction(5.0, 7, obs::TaskKind::kMap, 500)};
  FaultRecorder recorder;
  core::SimConfig cfg = EngineConfig(&plan);
  cfg.observer = &recorder;
  const auto faulted = core::Replay(SingleJob(8, 2), fifo, cfg);
  EXPECT_EQ(recorder.Count(obs::FaultEventKind::kAttemptKilled), 0);
  EXPECT_DOUBLE_EQ(faulted.jobs[0].CompletionTime(), clean);
}

TEST(EngineFaults, LongHeartbeatLossActsAsCrashRestore) {
  sched::FifoPolicy fifo;
  fault::FaultPlan crash_restore = EnginePlan();
  crash_restore.actions = {
      NodeAction(fault::FaultActionKind::kNodeCrash, 15.0, 0),
      NodeAction(fault::FaultActionKind::kNodeRestore, 25.0, 0)};
  const double explicit_pair =
      core::Replay(SingleJob(16, 2), fifo, EngineConfig(&crash_restore))
          .jobs[0]
          .CompletionTime();

  fault::FaultPlan hb = EnginePlan();
  fault::FaultAction window =
      NodeAction(fault::FaultActionKind::kHeartbeatLoss, 15.0, 0);
  window.end_time = 25.0;
  hb.actions = {window};
  core::SimConfig cfg = EngineConfig(&hb);
  cfg.tasktracker_expiry_interval = 5.0;  // window (10 s) >= expiry
  const double via_window =
      core::Replay(SingleJob(16, 2), fifo, cfg).jobs[0].CompletionTime();
  EXPECT_DOUBLE_EQ(via_window, explicit_pair);
}

TEST(EngineFaults, ShortHeartbeatLossIsInvisible) {
  sched::FifoPolicy fifo;
  const double clean =
      core::Replay(SingleJob(16, 2), fifo, EngineConfig(nullptr))
          .jobs[0]
          .CompletionTime();
  fault::FaultPlan hb = EnginePlan();
  fault::FaultAction window =
      NodeAction(fault::FaultActionKind::kHeartbeatLoss, 15.0, 0);
  window.end_time = 16.0;  // 1 s << default 600 s expiry
  hb.actions = {window};
  const double faulted =
      core::Replay(SingleJob(16, 2), fifo, EngineConfig(&hb))
          .jobs[0]
          .CompletionTime();
  EXPECT_DOUBLE_EQ(faulted, clean);
}

TEST(EngineFaults, FaultedRunIsDeterministic) {
  sched::FifoPolicy fifo;
  fault::FaultPlan plan = EnginePlan();
  plan.actions = {NodeAction(fault::FaultActionKind::kNodeCrash, 15.0, 0),
                  NodeAction(fault::FaultActionKind::kNodeRestore, 25.0, 0),
                  KillAction(12.0, 0, obs::TaskKind::kMap, 5)};
  const auto a = core::Replay(SingleJob(16, 4), fifo, EngineConfig(&plan));
  const auto b = core::Replay(SingleJob(16, 4), fifo, EngineConfig(&plan));
  EXPECT_DOUBLE_EQ(a.jobs[0].completion, b.jobs[0].completion);
  EXPECT_EQ(a.events_processed, b.events_processed);
  // Observer presence must not perturb the trajectory either.
  FaultRecorder recorder;
  core::SimConfig observed = EngineConfig(&plan);
  observed.observer = &recorder;
  const auto c = core::Replay(SingleJob(16, 4), fifo, observed);
  EXPECT_DOUBLE_EQ(c.jobs[0].completion, a.jobs[0].completion);
  EXPECT_EQ(c.events_processed, a.events_processed);
}

TEST(EngineFaults, GeometryMismatchThrows) {
  sched::FifoPolicy fifo;
  fault::FaultPlan plan = EnginePlan();  // 4 map + 2 reduce slots
  plan.actions = {NodeAction(fault::FaultActionKind::kNodeCrash, 5.0, 0)};
  core::SimConfig cfg = EngineConfig(&plan);
  cfg.map_slots = 6;  // != 2 nodes x 2 slots
  EXPECT_THROW(core::Replay(SingleJob(8, 2), fifo, cfg),
               std::invalid_argument);
}

TEST(EngineFaults, GeometryFreeNodeActionThrows) {
  sched::FifoPolicy fifo;
  fault::FaultPlan plan;  // num_nodes == 0
  plan.actions = {NodeAction(fault::FaultActionKind::kNodeCrash, 5.0, 0)};
  EXPECT_THROW(core::Replay(SingleJob(8, 2), fifo, EngineConfig(&plan)),
               std::invalid_argument);
}

// --- testbed (node-level) -------------------------------------------------

cluster::JobSpec TestbedSpec(int blocks = 16, int reduces = 4) {
  cluster::JobSpec spec;
  spec.app = cluster::apps::WordCount();
  spec.dataset_label = "fault-test";
  spec.input_mb = blocks * 64.0;
  spec.num_reduces = reduces;
  return spec;
}

cluster::TestbedOptions TestbedFaultOptions(const fault::FaultPlan* plan,
                                            double expiry = 30.0) {
  cluster::TestbedOptions opts;
  opts.config.num_nodes = 4;
  opts.config.tasktracker_expiry_interval = expiry;
  opts.seed = 11;
  opts.fault_plan = plan;
  return opts;
}

fault::FaultPlan TestbedPlan() {
  fault::FaultPlan plan;
  plan.num_nodes = 4;
  plan.map_slots_per_node = 2;
  plan.reduce_slots_per_node = 2;
  return plan;
}

TEST(TestbedFaults, CrashExpiresTrackerAndReexecutesWork) {
  const std::vector<cluster::SubmittedJob> jobs{{TestbedSpec(), 0.0, 0.0}};
  const auto clean = cluster::RunTestbed(jobs, TestbedFaultOptions(nullptr));

  // Crash the node holding the earliest-finishing map, just after it
  // reports: its completed output is stranded on the dead node's disk, so
  // lost-map re-execution must fire when the tracker expires.
  const cluster::TaskAttemptRecord* first_map = nullptr;
  for (const auto& task : clean.log.tasks()) {
    if (task.kind != cluster::TaskKind::kMap || !task.succeeded) continue;
    if (first_map == nullptr || task.end < first_map->end) first_map = &task;
  }
  ASSERT_NE(first_map, nullptr);
  ASSERT_LT(first_map->end + 20.0, clean.makespan);

  fault::FaultPlan plan = TestbedPlan();
  plan.actions = {NodeAction(fault::FaultActionKind::kNodeCrash,
                             first_map->end + 1.0, first_map->node),
                  NodeAction(fault::FaultActionKind::kNodeRestore,
                             first_map->end + 15.0, first_map->node)};
  FaultRecorder recorder;
  cluster::TestbedOptions opts = TestbedFaultOptions(&plan, /*expiry=*/5.0);
  opts.observer = &recorder;
  const auto faulted = cluster::RunTestbed(jobs, opts);

  ASSERT_EQ(faulted.log.jobs().size(), 1u);
  EXPECT_GT(faulted.log.jobs()[0].finish_time, 0.0);
  EXPECT_EQ(recorder.Count(obs::FaultEventKind::kNodeLost), 1);
  EXPECT_EQ(recorder.Count(obs::FaultEventKind::kNodeRestored), 1);
  EXPECT_GE(recorder.Count(obs::FaultEventKind::kTaskReexecuted), 1);
  EXPECT_GT(faulted.makespan, clean.makespan);
}

TEST(TestbedFaults, SlowdownStretchesTheRun) {
  const std::vector<cluster::SubmittedJob> jobs{{TestbedSpec(), 0.0, 0.0}};
  const auto clean = cluster::RunTestbed(jobs, TestbedFaultOptions(nullptr));

  fault::FaultPlan plan = TestbedPlan();
  fault::FaultAction slow =
      NodeAction(fault::FaultActionKind::kNodeSlowdown, 0.0, 0);
  slow.factor = 0.25;
  plan.actions = {slow};
  const auto faulted =
      cluster::RunTestbed(jobs, TestbedFaultOptions(&plan));
  EXPECT_GT(faulted.makespan, clean.makespan);
}

TEST(TestbedFaults, ShortHeartbeatLossIsInvisible) {
  const std::vector<cluster::SubmittedJob> jobs{{TestbedSpec(), 0.0, 0.0}};
  const auto clean =
      cluster::RunTestbed(jobs, TestbedFaultOptions(nullptr, 600.0));
  fault::FaultPlan plan = TestbedPlan();
  fault::FaultAction window =
      NodeAction(fault::FaultActionKind::kHeartbeatLoss, 10.0, 1);
  window.end_time = 14.0;  // 4 s << 600 s expiry
  plan.actions = {window};
  const auto faulted =
      cluster::RunTestbed(jobs, TestbedFaultOptions(&plan, 600.0));
  EXPECT_DOUBLE_EQ(faulted.makespan, clean.makespan);
  // Only the fault-action queue event itself is extra; the trajectory is
  // untouched.
  EXPECT_EQ(faulted.events_processed, clean.events_processed + 1);
}

TEST(TestbedFaults, FaultedRunIsDeterministic) {
  const std::vector<cluster::SubmittedJob> jobs{{TestbedSpec(), 0.0, 0.0},
                                                {TestbedSpec(8, 2), 5.0, 0.0}};
  fault::FaultPlan plan = TestbedPlan();
  plan.actions = {NodeAction(fault::FaultActionKind::kNodeCrash, 10.0, 1),
                  NodeAction(fault::FaultActionKind::kNodeRestore, 120.0, 1),
                  KillAction(15.0, 0, obs::TaskKind::kMap, 1)};
  const auto a = cluster::RunTestbed(jobs, TestbedFaultOptions(&plan));
  const auto b = cluster::RunTestbed(jobs, TestbedFaultOptions(&plan));
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events_processed, b.events_processed);
  ASSERT_EQ(a.log.tasks().size(), b.log.tasks().size());
  for (std::size_t i = 0; i < a.log.tasks().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.log.tasks()[i].end, b.log.tasks()[i].end);
    EXPECT_EQ(a.log.tasks()[i].node, b.log.tasks()[i].node);
  }
}

TEST(TestbedFaults, InvalidPlanThrows) {
  const std::vector<cluster::SubmittedJob> jobs{{TestbedSpec(), 0.0, 0.0}};
  fault::FaultPlan plan = TestbedPlan();
  plan.num_nodes = 8;  // != config num_nodes (4)
  plan.actions = {NodeAction(fault::FaultActionKind::kNodeCrash, 10.0, 6)};
  EXPECT_THROW(cluster::RunTestbed(jobs, TestbedFaultOptions(&plan)),
               std::invalid_argument);
}

// --- Mumak ----------------------------------------------------------------

mumak::RumenTrace UniformTrace(int num_maps, int num_reduces) {
  trace::JobProfile p;
  p.app_name = "uniform";
  p.num_maps = num_maps;
  p.num_reduces = num_reduces;
  p.map_durations.assign(num_maps, 10.0);
  p.typical_shuffle_durations.assign(num_reduces, 5.0);
  p.reduce_durations.assign(num_reduces, 2.0);
  return mumak::RumenTrace::FromProfiles({p}, {0.0});
}

mumak::MumakConfig MumakFaultConfig(const fault::FaultPlan* plan) {
  mumak::MumakConfig cfg;
  cfg.num_nodes = 4;
  cfg.fault_plan = plan;
  return cfg;
}

fault::FaultPlan MumakPlan() {
  fault::FaultPlan plan;
  plan.num_nodes = 4;
  plan.map_slots_per_node = 1;
  plan.reduce_slots_per_node = 1;
  return plan;
}

TEST(MumakFaults, CrashSilencesNodeAndRequeuesAttempts) {
  const auto clean =
      mumak::RunMumak(UniformTrace(8, 2), MumakFaultConfig(nullptr));

  fault::FaultPlan plan = MumakPlan();
  // Restore while the map stage is still running (5 remaining maps on 3
  // surviving 1-slot nodes keep the stage busy past t=25), so the rejoin
  // is exercised before the run drains.
  plan.actions = {NodeAction(fault::FaultActionKind::kNodeCrash, 5.0, 1),
                  NodeAction(fault::FaultActionKind::kNodeRestore, 25.0, 1)};
  FaultRecorder recorder;
  mumak::MumakConfig cfg = MumakFaultConfig(&plan);
  cfg.observer = &recorder;
  const auto faulted = mumak::RunMumak(UniformTrace(8, 2), cfg);

  ASSERT_EQ(faulted.jobs.size(), 1u);
  EXPECT_GT(faulted.jobs[0].finish_time, 0.0);
  EXPECT_EQ(recorder.Count(obs::FaultEventKind::kNodeLost), 1);
  EXPECT_EQ(recorder.Count(obs::FaultEventKind::kNodeRestored), 1);
  EXPECT_GT(faulted.jobs[0].CompletionTime(), clean.jobs[0].CompletionTime());
}

TEST(MumakFaults, KillAttemptFromGeometryFreePlan) {
  const auto clean =
      mumak::RunMumak(UniformTrace(8, 2), MumakFaultConfig(nullptr));
  fault::FaultPlan plan;  // num_nodes == 0: kill-only plans are legal
  plan.actions = {KillAction(5.0, 0, obs::TaskKind::kMap, 0)};
  FaultRecorder recorder;
  mumak::MumakConfig cfg = MumakFaultConfig(&plan);
  cfg.observer = &recorder;
  const auto faulted = mumak::RunMumak(UniformTrace(8, 2), cfg);
  EXPECT_EQ(recorder.Count(obs::FaultEventKind::kAttemptKilled), 1);
  EXPECT_GT(faulted.jobs[0].CompletionTime(), clean.jobs[0].CompletionTime());
}

TEST(MumakFaults, FaultedRunIsDeterministic) {
  fault::FaultPlan plan = MumakPlan();
  plan.actions = {NodeAction(fault::FaultActionKind::kNodeCrash, 5.0, 1),
                  NodeAction(fault::FaultActionKind::kNodeRestore, 60.0, 1)};
  const auto a = mumak::RunMumak(UniformTrace(16, 4), MumakFaultConfig(&plan));
  const auto b = mumak::RunMumak(UniformTrace(16, 4), MumakFaultConfig(&plan));
  EXPECT_DOUBLE_EQ(a.jobs[0].finish_time, b.jobs[0].finish_time);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

TEST(MumakFaults, GeometryMismatchThrows) {
  fault::FaultPlan plan = MumakPlan();
  plan.num_nodes = 3;  // != config num_nodes (4)
  plan.actions = {NodeAction(fault::FaultActionKind::kNodeCrash, 5.0, 1)};
  EXPECT_THROW(mumak::RunMumak(UniformTrace(8, 2), MumakFaultConfig(&plan)),
               std::invalid_argument);
}

}  // namespace
}  // namespace simmr
