#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <sstream>

namespace simmr::fault {
namespace {

FaultPlan SamplePlan() {
  FaultPlan plan;
  plan.num_nodes = 4;
  plan.map_slots_per_node = 2;
  plan.reduce_slots_per_node = 1;
  plan.seed = 12345;
  FaultAction crash;
  crash.kind = FaultActionKind::kNodeCrash;
  crash.time = 7.25;
  crash.node = 2;
  FaultAction restore;
  restore.kind = FaultActionKind::kNodeRestore;
  restore.time = 31.0625;
  restore.node = 2;
  FaultAction hb;
  hb.kind = FaultActionKind::kHeartbeatLoss;
  hb.time = 40.0;
  hb.end_time = 55.5;
  hb.node = 0;
  FaultAction slow;
  slow.kind = FaultActionKind::kNodeSlowdown;
  slow.time = 1.0 / 3.0;  // not exactly representable in decimal
  slow.node = 3;
  slow.factor = 0.1 + 0.2;  // 0.30000000000000004
  FaultAction kill;
  kill.kind = FaultActionKind::kKillAttempt;
  kill.time = 12.0;
  kill.job = 1;
  kill.task_kind = obs::TaskKind::kReduce;
  kill.index = 5;
  plan.actions = {crash, restore, hb, slow, kill};
  return plan;
}

TEST(FaultPlanFormat, RoundTripsBitExactly) {
  const FaultPlan plan = SamplePlan();
  std::stringstream stream;
  WriteFaultPlan(stream, plan);
  const FaultPlan back = ReadFaultPlan(stream);
  EXPECT_EQ(back, plan);  // operator== compares doubles exactly
}

TEST(FaultPlanFormat, SerializedFormIsStable) {
  // Writing the same plan twice yields byte-identical text — the property
  // committed corpus pins rely on.
  const FaultPlan plan = SamplePlan();
  std::stringstream a, b;
  WriteFaultPlan(a, plan);
  WriteFaultPlan(b, plan);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(a.str().rfind(kFaultPlanMagic, 0), 0u);  // starts with magic
}

TEST(FaultPlanFormat, BodyParserMatchesFullParser) {
  // Containers (simmr.repro.v1) consume the magic while peeking and hand
  // the rest to ReadFaultPlanBody.
  const FaultPlan plan = SamplePlan();
  std::stringstream stream;
  WriteFaultPlan(stream, plan);
  std::string magic;
  ASSERT_TRUE(std::getline(stream, magic));
  ASSERT_EQ(magic, kFaultPlanMagic);
  EXPECT_EQ(ReadFaultPlanBody(stream), plan);
}

TEST(FaultPlanFormat, RejectsUnknownVersion) {
  std::stringstream stream("simmr.faultplan.v9\nnum_nodes 1\n");
  EXPECT_THROW(ReadFaultPlan(stream), std::runtime_error);
}

TEST(FaultPlanFormat, RejectsTruncatedActionList) {
  const FaultPlan plan = SamplePlan();
  std::stringstream stream;
  WriteFaultPlan(stream, plan);
  std::string text = stream.str();
  text.erase(text.rfind("kill_attempt"));  // drop the declared last action
  std::stringstream cut(text);
  EXPECT_THROW(ReadFaultPlan(cut), std::runtime_error);
}

TEST(FaultPlanFormat, KindNamesRoundTrip) {
  for (FaultActionKind kind :
       {FaultActionKind::kNodeCrash, FaultActionKind::kNodeRestore,
        FaultActionKind::kHeartbeatLoss, FaultActionKind::kNodeSlowdown,
        FaultActionKind::kKillAttempt}) {
    const auto parsed = ParseFaultActionKind(FaultActionKindName(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseFaultActionKind("meteor_strike").has_value());
}

TEST(FaultPlanValidate, AcceptsSamplePlan) {
  EXPECT_EQ(ValidateFaultPlan(SamplePlan()), "");
}

TEST(FaultPlanValidate, AcceptsEmptyPlan) {
  EXPECT_EQ(ValidateFaultPlan(FaultPlan{}), "");
}

FaultAction NodeAction(FaultActionKind kind, double time, std::int32_t node) {
  FaultAction a;
  a.kind = kind;
  a.time = time;
  a.node = node;
  return a;
}

TEST(FaultPlanValidate, RejectsDoubleCrashWithoutRestore) {
  FaultPlan plan;
  plan.num_nodes = 2;
  plan.map_slots_per_node = 1;
  plan.reduce_slots_per_node = 1;
  plan.actions = {NodeAction(FaultActionKind::kNodeCrash, 1.0, 0),
                  NodeAction(FaultActionKind::kNodeCrash, 2.0, 0)};
  EXPECT_NE(ValidateFaultPlan(plan), "");
}

TEST(FaultPlanValidate, RejectsRestoreOfHealthyNode) {
  FaultPlan plan;
  plan.num_nodes = 2;
  plan.map_slots_per_node = 1;
  plan.reduce_slots_per_node = 1;
  plan.actions = {NodeAction(FaultActionKind::kNodeRestore, 1.0, 0)};
  EXPECT_NE(ValidateFaultPlan(plan), "");
}

TEST(FaultPlanValidate, RejectsOutOfRangeNode) {
  FaultPlan plan;
  plan.num_nodes = 2;
  plan.map_slots_per_node = 1;
  plan.reduce_slots_per_node = 1;
  plan.actions = {NodeAction(FaultActionKind::kNodeCrash, 1.0, 2)};
  EXPECT_NE(ValidateFaultPlan(plan), "");
  plan.actions[0].node = -1;
  EXPECT_NE(ValidateFaultPlan(plan), "");
}

TEST(FaultPlanValidate, RejectsEmptyHeartbeatLossWindow) {
  FaultPlan plan;
  plan.num_nodes = 2;
  plan.map_slots_per_node = 1;
  plan.reduce_slots_per_node = 1;
  FaultAction hb = NodeAction(FaultActionKind::kHeartbeatLoss, 5.0, 0);
  hb.end_time = 5.0;  // [5, 5) is empty
  plan.actions = {hb};
  EXPECT_NE(ValidateFaultPlan(plan), "");
}

TEST(FaultPlanValidate, RejectsNonPositiveSlowdownFactor) {
  FaultPlan plan;
  plan.num_nodes = 2;
  plan.map_slots_per_node = 1;
  plan.reduce_slots_per_node = 1;
  FaultAction slow = NodeAction(FaultActionKind::kNodeSlowdown, 5.0, 0);
  slow.factor = 0.0;
  plan.actions = {slow};
  EXPECT_NE(ValidateFaultPlan(plan), "");
}

TEST(FaultPlanValidate, RejectsNegativeKillTarget) {
  FaultPlan plan;  // geometry-free: kills only
  FaultAction kill;
  kill.kind = FaultActionKind::kKillAttempt;
  kill.time = 1.0;
  kill.job = -1;
  kill.index = 0;
  plan.actions = {kill};
  EXPECT_NE(ValidateFaultPlan(plan), "");
  plan.actions[0].job = 0;
  plan.actions[0].index = -1;
  EXPECT_NE(ValidateFaultPlan(plan), "");
  plan.actions[0].index = 0;
  EXPECT_EQ(ValidateFaultPlan(plan), "");
}

TEST(FaultPlanValidate, RejectsNodeActionsInGeometryFreePlan) {
  FaultPlan plan;  // num_nodes == 0
  plan.actions = {NodeAction(FaultActionKind::kNodeCrash, 1.0, 0)};
  EXPECT_NE(ValidateFaultPlan(plan), "");
}

TEST(FaultPlanValidate, RejectsNegativeTime) {
  FaultPlan plan;
  plan.num_nodes = 2;
  plan.map_slots_per_node = 1;
  plan.reduce_slots_per_node = 1;
  plan.actions = {NodeAction(FaultActionKind::kNodeCrash, -1.0, 0)};
  EXPECT_NE(ValidateFaultPlan(plan), "");
}

TEST(FaultPlanSort, StableWithinSameInstant) {
  FaultPlan plan;
  plan.num_nodes = 4;
  plan.map_slots_per_node = 1;
  plan.reduce_slots_per_node = 1;
  plan.actions = {NodeAction(FaultActionKind::kNodeCrash, 5.0, 1),
                  NodeAction(FaultActionKind::kNodeCrash, 5.0, 0),
                  NodeAction(FaultActionKind::kNodeCrash, 2.0, 3)};
  const auto sorted = SortedActions(plan);
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].node, 3);  // earliest first
  EXPECT_EQ(sorted[1].node, 1);  // original order preserved at t=5
  EXPECT_EQ(sorted[2].node, 0);
}

}  // namespace
}  // namespace simmr::fault
