// Summarize() and AccuracyStats over unified RunResults.
#include "analysis/result_stats.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace simmr::analysis {
namespace {

backend::RunResult TwoJobResult() {
  backend::RunResult result;
  result.simulator = "simmr";
  result.events_processed = 123;
  result.makespan = 200.0;
  backend::JobOutcome a;
  a.job = 0;
  a.submit = 0.0;
  a.finish = 150.0;
  a.deadline = 100.0;  // missed by 50%
  backend::JobOutcome b;
  b.job = 1;
  b.submit = 50.0;
  b.finish = 100.0;
  b.deadline = 120.0;  // met
  result.jobs = {a, b};
  return result;
}

TEST(Summarize, ReducesJobsToSummaryMetrics) {
  const ResultSummary s = Summarize(TwoJobResult(), 4, 2);
  EXPECT_EQ(s.jobs, 2u);
  EXPECT_EQ(s.events_processed, 123u);
  EXPECT_DOUBLE_EQ(s.makespan, 200.0);
  EXPECT_DOUBLE_EQ(s.deadline_utility, 0.5);
  EXPECT_EQ(s.missed_deadlines, 1);
  EXPECT_DOUBLE_EQ(s.mean_completion_s, (150.0 + 50.0) / 2.0);
  EXPECT_DOUBLE_EQ(s.max_completion_s, 150.0);
  // No task records -> utilization stays zeroed.
  EXPECT_DOUBLE_EQ(s.utilization.map_utilization, 0.0);
  EXPECT_DOUBLE_EQ(s.utilization.reduce_utilization, 0.0);
}

TEST(Summarize, ComputesUtilizationFromTaskRecords) {
  backend::RunResult result = TwoJobResult();
  // One map busy for the full makespan on a 1+1 slot cluster: 100% map
  // utilization, 0% reduce.
  result.tasks.push_back(
      core::SimTaskRecord{0, core::SimTaskKind::kMap, 0.0, 0.0, 200.0});
  const ResultSummary s = Summarize(result, 1, 1);
  EXPECT_DOUBLE_EQ(s.utilization.map_utilization, 1.0);
  EXPECT_DOUBLE_EQ(s.utilization.reduce_utilization, 0.0);
}

TEST(Summarize, EmptyResultIsAllZeros) {
  const ResultSummary s = Summarize(backend::RunResult{}, 4, 2);
  EXPECT_EQ(s.jobs, 0u);
  EXPECT_DOUBLE_EQ(s.mean_completion_s, 0.0);
  EXPECT_DOUBLE_EQ(s.deadline_utility, 0.0);
}

TEST(AccuracyStats, SignedErrorsAndAbsAggregates) {
  AccuracyStats stats;
  stats.Add(100.0, 110.0);  // +10%
  stats.Add(100.0, 80.0);   // -20%
  ASSERT_EQ(stats.errors_pct.size(), 2u);
  EXPECT_DOUBLE_EQ(stats.errors_pct[0], 10.0);
  EXPECT_DOUBLE_EQ(stats.errors_pct[1], -20.0);
  EXPECT_DOUBLE_EQ(stats.AvgAbsError(), 15.0);
  EXPECT_DOUBLE_EQ(stats.MaxAbsError(), 20.0);
}

TEST(AccuracyStats, EmptyIsZeroAndZeroActualThrows) {
  AccuracyStats stats;
  EXPECT_DOUBLE_EQ(stats.AvgAbsError(), 0.0);
  EXPECT_DOUBLE_EQ(stats.MaxAbsError(), 0.0);
  EXPECT_THROW(stats.Add(0.0, 10.0), std::invalid_argument);
}

}  // namespace
}  // namespace simmr::analysis
