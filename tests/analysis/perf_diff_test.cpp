#include "analysis/perf_diff.h"

#include <gtest/gtest.h>

#include "analysis/json_value.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

namespace simmr::analysis {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::string WriteTemp(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << content;
  return path;
}

/// A v2 suite with one run carrying a point metric and a stats metric.
std::string SuiteJson(double wall_seconds, double median, double ci_lo,
                      double ci_hi) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      R"({"schema":"simmr.benchsuite.v2","tag":"t",)"
      R"("host":{"cpu_model":"cpu0","cores":8,"build_type":"Release"},)"
      R"("runs":[{"schema":"simmr.telemetry.v1","tool":"bench",)"
      R"("scenario":"fig","wall_seconds":%g,"events_per_second":1000,)"
      R"("stats":{"replay_seconds":{"n":10,"median":%g,"mad":0.01,)"
      R"("ci95_lo":%g,"ci95_hi":%g}}}]})",
      wall_seconds, median, ci_lo, ci_hi);
  return buf;
}

BenchSuite Load(const std::string& name, const std::string& json) {
  return LoadBenchSuite(WriteTemp(name, json));
}

TEST(PerfDiff, IdenticalSuitesAreClean) {
  const auto base = Load("pd_base.json", SuiteJson(1.0, 0.5, 0.49, 0.51));
  const auto result = DiffBenchSuites(base, base, PerfDiffOptions{});
  EXPECT_EQ(result.regressions, 0);
  EXPECT_EQ(result.improvements, 0);
  EXPECT_TRUE(result.errors.empty());
  EXPECT_EQ(PerfDiffExitCode(result), 0);
}

TEST(PerfDiff, InjectedTwentyPercentSlowdownRegresses) {
  // The ISSUE acceptance fixture: a >= 20% slowdown with clearly separated
  // intervals must trip the gate (threshold 10%) and exit nonzero.
  const auto base = Load("pd_b20.json", SuiteJson(1.0, 0.50, 0.49, 0.51));
  const auto cand = Load("pd_c20.json", SuiteJson(1.25, 0.62, 0.61, 0.63));
  const auto result = DiffBenchSuites(base, cand, PerfDiffOptions{});
  EXPECT_EQ(result.regressions, 2);  // wall_seconds and replay_seconds
  EXPECT_EQ(PerfDiffExitCode(result), 4);
  const std::string report = RenderPerfDiff(result, PerfDiffOptions{});
  EXPECT_TRUE(Contains(report, "REGRESSION"));
}

TEST(PerfDiff, NoisyDeltaWithOverlappingCIsIsNotARegression) {
  // 20% median delta but wide, overlapping intervals: noise, not signal.
  const auto base = Load("pd_bn.json", SuiteJson(1.0, 0.50, 0.40, 0.70));
  auto cand = Load("pd_cn.json", SuiteJson(1.0, 0.60, 0.45, 0.75));
  const auto result = DiffBenchSuites(base, cand, PerfDiffOptions{});
  for (const auto& d : result.deltas) {
    if (d.metric == "replay_seconds") {
      EXPECT_FALSE(d.ci_separated);
      EXPECT_FALSE(d.regression);
    }
  }
  EXPECT_EQ(PerfDiffExitCode(result), 0);
}

TEST(PerfDiff, HigherIsBetterMetricsUseInvertedDirection) {
  BenchSuite base, cand;
  BenchRun run;
  run.key = "bench/x";
  MetricSample throughput;
  throughput.value = 1000.0;
  throughput.ci_lo = throughput.ci_hi = 1000.0;
  throughput.higher_is_better = true;
  run.metrics.emplace_back("events_per_second", throughput);
  base.runs.push_back(run);
  run.metrics[0].second.value = 700.0;  // 30% throughput drop
  run.metrics[0].second.ci_lo = run.metrics[0].second.ci_hi = 700.0;
  cand.runs.push_back(run);
  const auto result = DiffBenchSuites(base, cand, PerfDiffOptions{});
  ASSERT_EQ(result.deltas.size(), 1u);
  EXPECT_NEAR(result.deltas[0].delta_fraction, 0.3, 1e-9);
  EXPECT_TRUE(result.deltas[0].regression);
  EXPECT_EQ(PerfDiffExitCode(result), 4);
}

TEST(PerfDiff, MissingBaselineRunIsAHardError) {
  auto base = Load("pd_bm.json", SuiteJson(1.0, 0.5, 0.49, 0.51));
  BenchSuite cand = base;
  cand.runs.clear();  // the candidate lost the bench entirely
  const auto result = DiffBenchSuites(base, cand, PerfDiffOptions{});
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_TRUE(Contains(result.errors[0], "missing from the candidate"));
  EXPECT_EQ(PerfDiffExitCode(result), 1);
}

TEST(PerfDiff, MissingMetricIsAHardError) {
  auto base = Load("pd_bmm.json", SuiteJson(1.0, 0.5, 0.49, 0.51));
  BenchSuite cand = base;
  cand.runs[0].metrics.pop_back();  // drop the stats metric
  const auto result = DiffBenchSuites(base, cand, PerfDiffOptions{});
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_TRUE(Contains(result.errors[0], "metric 'replay_seconds'"));
  EXPECT_EQ(PerfDiffExitCode(result), 1);
}

TEST(PerfDiff, ExtraCandidateRunIsOnlyANote) {
  auto base = Load("pd_be.json", SuiteJson(1.0, 0.5, 0.49, 0.51));
  BenchSuite cand = base;
  BenchRun extra;
  extra.key = "bench/new";
  cand.runs.push_back(extra);
  const auto result = DiffBenchSuites(base, cand, PerfDiffOptions{});
  EXPECT_TRUE(result.errors.empty());
  ASSERT_EQ(result.notes.size(), 1u);
  EXPECT_TRUE(Contains(result.notes[0], "has no baseline"));
  EXPECT_EQ(PerfDiffExitCode(result), 0);
}

TEST(PerfDiff, V1SchemaIsAcceptedWithAMigrationNote) {
  const std::string v1 =
      R"({"schema":"simmr.benchsuite.v1","tag":"old","runs":[)"
      R"({"tool":"bench","scenario":"fig","wall_seconds":1.0}]})";
  const auto base = Load("pd_v1.json", v1);
  EXPECT_EQ(base.schema_version, 1);
  EXPECT_TRUE(base.host.empty());
  const auto result = DiffBenchSuites(base, base, PerfDiffOptions{});
  ASSERT_FALSE(result.notes.empty());
  EXPECT_TRUE(Contains(result.notes[0], "v1 bench suite"));
  EXPECT_EQ(PerfDiffExitCode(result), 0);
}

TEST(PerfDiff, UnknownSchemaIsRejected) {
  EXPECT_THROW(Load("pd_bad.json", R"({"schema":"simmr.telemetry.v1"})"),
               std::runtime_error);
  EXPECT_THROW(Load("pd_nonobj.json", "[1,2]"), std::runtime_error);
  EXPECT_THROW(Load("pd_noruns.json",
                    R"({"schema":"simmr.benchsuite.v2","tag":"t"})"),
               std::runtime_error);
  EXPECT_THROW(LoadBenchSuite("/nonexistent/suite.json"),
               std::runtime_error);
}

TEST(PerfDiff, NonFiniteMetricIsRejectedAtLoad) {
  // 1e999 overflows to inf in strtod; a gate cannot compare against it.
  const std::string inf_suite =
      R"({"schema":"simmr.benchsuite.v2","tag":"t","runs":[)"
      R"({"tool":"bench","scenario":"fig","wall_seconds":1e999}]})";
  EXPECT_THROW(Load("pd_inf.json", inf_suite), std::runtime_error);
}

TEST(PerfDiff, ZeroVarianceStatsBehaveLikePointValues) {
  // Degenerate interval (lo == hi == median): equal medians never
  // regress, a beyond-threshold delta always does.
  const auto base = Load("pd_bz.json", SuiteJson(1.0, 0.5, 0.5, 0.5));
  const auto same = DiffBenchSuites(base, base, PerfDiffOptions{});
  EXPECT_EQ(same.regressions, 0);
  const auto cand = Load("pd_cz.json", SuiteJson(1.0, 0.65, 0.65, 0.65));
  const auto result = DiffBenchSuites(base, cand, PerfDiffOptions{});
  EXPECT_EQ(result.regressions, 1);
  EXPECT_EQ(PerfDiffExitCode(result), 4);
}

TEST(PerfDiff, ZeroBaselineMetricIsSkippedWithANote) {
  BenchSuite base, cand;
  BenchRun run;
  run.key = "bench/z";
  MetricSample zero;
  zero.value = zero.ci_lo = zero.ci_hi = 0.0;
  run.metrics.emplace_back("wall_seconds", zero);
  base.runs.push_back(run);
  run.metrics[0].second.value = 5.0;
  cand.runs.push_back(run);
  const auto result = DiffBenchSuites(base, cand, PerfDiffOptions{});
  EXPECT_TRUE(result.deltas.empty());
  ASSERT_EQ(result.notes.size(), 1u);
  EXPECT_TRUE(Contains(result.notes[0], "baseline value is zero"));
  EXPECT_EQ(PerfDiffExitCode(result), 0);
}

TEST(PerfDiff, DuplicateRunKeysAreErrors) {
  auto base = Load("pd_bd.json", SuiteJson(1.0, 0.5, 0.49, 0.51));
  BenchSuite cand = base;
  cand.runs.push_back(cand.runs[0]);
  const auto result = DiffBenchSuites(base, cand, PerfDiffOptions{});
  ASSERT_FALSE(result.errors.empty());
  EXPECT_TRUE(Contains(result.errors[0], "duplicate run"));
  EXPECT_EQ(PerfDiffExitCode(result), 1);
}

TEST(PerfDiff, HostMismatchIsNoted) {
  auto base = Load("pd_bh.json", SuiteJson(1.0, 0.5, 0.49, 0.51));
  BenchSuite cand = base;
  cand.host["cpu_model"] = "cpu1";
  const auto result = DiffBenchSuites(base, cand, PerfDiffOptions{});
  ASSERT_FALSE(result.notes.empty());
  EXPECT_TRUE(Contains(result.notes[0], "host mismatch"));
  EXPECT_EQ(PerfDiffExitCode(result), 0);  // note, not error
}

TEST(PerfDiff, JsonReportIsParseableAndComplete) {
  const auto base = Load("pd_bj.json", SuiteJson(1.0, 0.50, 0.49, 0.51));
  const auto cand = Load("pd_cj.json", SuiteJson(1.3, 0.65, 0.64, 0.66));
  PerfDiffOptions opt;
  opt.json = true;
  const auto result = DiffBenchSuites(base, cand, opt);
  const std::string json = RenderPerfDiff(result, opt);
  const auto doc = JsonValue::Parse(json);
  EXPECT_EQ(doc.StringOr("schema", ""), "simmr.perfdiff.v1");
  EXPECT_DOUBLE_EQ(doc.NumberOr("regressions", -1), 2.0);
  ASSERT_NE(doc.Find("deltas"), nullptr);
  EXPECT_EQ(doc.Find("deltas")->AsArray().size(), 3u);
}

}  // namespace
}  // namespace simmr::analysis
