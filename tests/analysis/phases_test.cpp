// Phase-breakdown tests: map/shuffle/reduce attribution, the first-wave
// filler rule, and wave counts from observed concurrency.
#include "analysis/phases.h"

#include <gtest/gtest.h>

namespace simmr::analysis {
namespace {

using obs::TaskKind;

TaskExec Task(TaskKind kind, std::int32_t index, double start,
              double shuffle_end, double end, bool ok = true) {
  TaskExec t;
  t.kind = kind;
  t.index = index;
  t.timing = {start, shuffle_end, end};
  t.reported = end;
  t.succeeded = ok;
  return t;
}

/// 2 maps then 2 reduces: reduce 0 is a first-wave filler launched at t=0,
/// reduce 1 a typical-wave reduce launched after the map stage.
JobRun TwoWaveJob() {
  JobRun job;
  job.id = 0;
  job.name = "two-wave";
  job.arrival = 0.0;
  job.tasks = {
      Task(TaskKind::kMap, 0, 0.0, 0.0, 10.0),
      Task(TaskKind::kMap, 1, 0.0, 0.0, 12.0),
      // Filler: occupies a slot from t=0; shuffle runs [12, 15] after the
      // map stage ends, reduce phase [15, 17].
      Task(TaskKind::kReduce, 0, 0.0, 15.0, 17.0),
      // Typical wave: starts after map_stage_end; shuffle [17, 22],
      // reduce [22, 24].
      Task(TaskKind::kReduce, 1, 17.0, 22.0, 24.0),
  };
  job.launches[0] = 2;
  job.launches[1] = 2;
  job.map_stage_end = 12.0;
  job.first_start = 0.0;
  job.completion = 24.0;
  job.completed = true;
  return job;
}

TEST(Phases, SplitsFirstWaveFromTypical) {
  const PhaseBreakdown pb = ComputePhaseBreakdown(TwoWaveJob());
  EXPECT_EQ(pb.num_maps, 2);
  EXPECT_EQ(pb.num_reduces, 2);
  EXPECT_EQ(pb.first_wave_reduces, 1);
  EXPECT_EQ(pb.typical_reduces, 1);

  EXPECT_DOUBLE_EQ(pb.map_total, 22.0);
  // First-wave shuffle counts only past map_stage_end: 15 - 12 = 3.
  EXPECT_DOUBLE_EQ(pb.first_shuffle_total, 3.0);
  EXPECT_DOUBLE_EQ(pb.typical_shuffle_total, 5.0);
  EXPECT_DOUBLE_EQ(pb.reduce_total, 4.0);

  EXPECT_DOUBLE_EQ(pb.map_avg, 11.0);
  EXPECT_DOUBLE_EQ(pb.map_max, 12.0);
  EXPECT_DOUBLE_EQ(pb.shuffle_avg, 4.0);   // (3 + 5) / 2
  EXPECT_DOUBLE_EQ(pb.reduce_avg, 2.0);
  EXPECT_DOUBLE_EQ(pb.reduce_max, 2.0);
  EXPECT_DOUBLE_EQ(pb.map_stage_span, 12.0);
}

TEST(Phases, WaveCountsFromPeakConcurrency) {
  const PhaseBreakdown pb = ComputePhaseBreakdown(TwoWaveJob());
  // Both maps overlap -> peak 2 -> one wave. Reduces do not overlap ->
  // peak 1 -> two waves.
  EXPECT_EQ(pb.peak_maps, 2);
  EXPECT_EQ(pb.map_waves, 1);
  EXPECT_EQ(pb.peak_reduces, 1);
  EXPECT_EQ(pb.reduce_waves, 2);
}

TEST(Phases, KilledAttemptsDoNotContribute) {
  JobRun job = TwoWaveJob();
  job.tasks.push_back(
      Task(TaskKind::kReduce, 0, 0.0, 5.0, 5.0, /*ok=*/false));
  job.kills[1] = 1;
  const PhaseBreakdown pb = ComputePhaseBreakdown(job);
  EXPECT_EQ(pb.num_reduces, 2);
  EXPECT_DOUBLE_EQ(pb.reduce_total, 4.0);
}

TEST(Phases, MapOnlyJob) {
  JobRun job;
  job.tasks = {Task(TaskKind::kMap, 0, 0.0, 0.0, 4.0)};
  job.map_stage_end = 4.0;
  const PhaseBreakdown pb = ComputePhaseBreakdown(job);
  EXPECT_EQ(pb.num_maps, 1);
  EXPECT_EQ(pb.num_reduces, 0);
  EXPECT_DOUBLE_EQ(pb.shuffle_avg, 0.0);
  EXPECT_DOUBLE_EQ(pb.reduce_avg, 0.0);
  EXPECT_EQ(pb.reduce_waves, 0);
}

TEST(Phases, EmptyJobIsAllZero) {
  const PhaseBreakdown pb = ComputePhaseBreakdown(JobRun{});
  EXPECT_EQ(pb.num_maps, 0);
  EXPECT_EQ(pb.num_reduces, 0);
  EXPECT_DOUBLE_EQ(pb.map_total, 0.0);
  EXPECT_DOUBLE_EQ(pb.ShuffleTotal(), 0.0);
  EXPECT_EQ(pb.map_waves, 0);
}

}  // namespace
}  // namespace simmr::analysis
