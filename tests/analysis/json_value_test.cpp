#include "analysis/json_value.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace simmr::analysis {
namespace {

TEST(JsonValue, ParsesScalars) {
  EXPECT_TRUE(JsonValue::Parse("null").IsNull());
  EXPECT_EQ(JsonValue::Parse("true").AsBool(), true);
  EXPECT_EQ(JsonValue::Parse("false").AsBool(), false);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("42").AsNumber(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-1.5e3").AsNumber(), -1500.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"").AsString(), "hi");
}

TEST(JsonValue, ParsesNestedStructures) {
  const auto doc = JsonValue::Parse(
      R"({"a":[1,2,{"b":"c"}],"d":{"e":null},"f":true})");
  ASSERT_TRUE(doc.IsObject());
  const JsonValue* a = doc.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->AsArray().size(), 3u);
  EXPECT_DOUBLE_EQ(a->AsArray()[0].AsNumber(), 1.0);
  EXPECT_EQ(a->AsArray()[2].Find("b")->AsString(), "c");
  EXPECT_TRUE(doc.Find("d")->Find("e")->IsNull());
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(JsonValue, ObjectKeepsDocumentOrder) {
  const auto doc = JsonValue::Parse(R"({"z":1,"a":2,"m":3})");
  const auto& members = doc.AsObject();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(JsonValue, DecodesStringEscapes) {
  EXPECT_EQ(JsonValue::Parse(R"("a\"b\\c\nd\t")").AsString(), "a\"b\\c\nd\t");
  EXPECT_EQ(JsonValue::Parse(R"("Aé")").AsString(), "A\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(JsonValue::Parse(R"("😀")").AsString(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonValue, ConvenienceLookups) {
  const auto doc = JsonValue::Parse(R"({"n":2.5,"s":"x"})");
  EXPECT_DOUBLE_EQ(doc.NumberOr("n", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(doc.NumberOr("missing", 7.0), 7.0);
  EXPECT_DOUBLE_EQ(doc.NumberOr("s", 7.0), 7.0);  // wrong kind -> fallback
  EXPECT_EQ(doc.StringOr("s", "d"), "x");
  EXPECT_EQ(doc.StringOr("n", "d"), "d");
}

TEST(JsonValue, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::Parse(""), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("[1,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("tru"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(JsonValue::Parse("NaN"), std::runtime_error);
}

TEST(JsonValue, RejectsKindMismatches) {
  const auto num = JsonValue::Parse("1");
  EXPECT_THROW(num.AsString(), std::runtime_error);
  EXPECT_THROW(num.AsObject(), std::runtime_error);
  EXPECT_EQ(num.Find("k"), nullptr);  // Find on non-object is benign
}

TEST(JsonValue, RejectsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_THROW(JsonValue::Parse(deep), std::runtime_error);
}

}  // namespace
}  // namespace simmr::analysis
