// `simmr_analyze timeline`: loading simmr.timeseries.v1 documents and the
// straggler-window detection over per-window duration percentiles.
#include "analysis/timeline.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

namespace simmr::analysis {
namespace {

std::string WriteTemp(const std::string& name, const std::string& content) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << content;
  return path;
}

const char kHeader[] =
    "{\"schema\":\"simmr.timeseries.v1\",\"tool\":\"simmr_replay\","
    "\"scenario\":\"policy=FIFO\",\"simulator\":\"simmr\",\"window_s\":60}\n";

TEST(Timeline, LoadsHeaderAndWindows) {
  const std::string path = WriteTemp(
      "timeline_load.jsonl",
      std::string(kHeader) +
          "{\"window\":0,\"t0\":0,\"t1\":60,\"events\":10,"
          "\"queue_depth\":4,\"queue_depth_max\":9,\"jobs_active\":2,"
          "\"running_maps\":3,\"maps_completed\":5,"
          "\"map_utilization\":0.75,\"reduce_utilization\":0.5,"
          "\"map_duration_p50\":10,\"map_duration_p95\":20,"
          "\"map_duration_p99\":25}\n"
          "{\"window\":1,\"t0\":60,\"t1\":90,\"partial\":true,"
          "\"events\":2}\n");
  const Timeline t = LoadTimeline(path);
  EXPECT_EQ(t.tool, "simmr_replay");
  EXPECT_EQ(t.simulator, "simmr");
  EXPECT_DOUBLE_EQ(t.window_s, 60.0);
  ASSERT_EQ(t.windows.size(), 2u);
  EXPECT_EQ(t.windows[0].events, 10u);
  EXPECT_DOUBLE_EQ(t.windows[0].queue_depth_max, 9.0);
  EXPECT_TRUE(t.windows[0].has_utilization);
  EXPECT_DOUBLE_EQ(t.windows[0].map_utilization, 0.75);
  EXPECT_TRUE(t.windows[0].has_map_durations);
  EXPECT_FALSE(t.windows[0].has_reduce_durations);
  EXPECT_FALSE(t.windows[0].partial);
  EXPECT_TRUE(t.windows[1].partial);
  EXPECT_FALSE(t.windows[1].has_utilization);
  std::remove(path.c_str());
}

TEST(Timeline, RejectsMissingFileBadSchemaAndMalformedLines) {
  EXPECT_THROW(LoadTimeline("/no/such/file.jsonl"), std::runtime_error);
  const std::string bad_schema = WriteTemp(
      "timeline_bad_schema.jsonl", "{\"schema\":\"simmr.eventlog.v1\"}\n");
  EXPECT_THROW(LoadTimeline(bad_schema), std::runtime_error);
  const std::string bad_json =
      WriteTemp("timeline_bad_json.jsonl",
                std::string(kHeader) + "{not json}\n");
  try {
    LoadTimeline(bad_json);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    // The error names the file and line.
    EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos);
  }
  const std::string empty = WriteTemp("timeline_empty.jsonl", "");
  EXPECT_THROW(LoadTimeline(empty), std::runtime_error);
  std::remove(bad_schema.c_str());
  std::remove(bad_json.c_str());
  std::remove(empty.c_str());
}

Timeline StragglerFixture() {
  Timeline t;
  t.tool = "simmr_replay";
  t.scenario = "policy=FIFO";
  t.simulator = "simmr";
  t.window_s = 60.0;
  // Window 0: tight distribution — not a straggler window.
  TimelineWindow tight;
  tight.index = 0;
  tight.t0 = 0.0;
  tight.t1 = 60.0;
  tight.maps_completed = 20;
  tight.has_map_durations = true;
  tight.map_p50 = 10.0;
  tight.map_p95 = 12.0;
  tight.map_p99 = 15.0;
  t.windows.push_back(tight);
  // Window 1: p99 5x the median with enough completions — a straggler.
  TimelineWindow skewed = tight;
  skewed.index = 1;
  skewed.t0 = 60.0;
  skewed.t1 = 120.0;
  skewed.map_p99 = 50.0;
  t.windows.push_back(skewed);
  // Window 2: same skew but too few completions to call.
  TimelineWindow thin = skewed;
  thin.index = 2;
  thin.t0 = 120.0;
  thin.t1 = 180.0;
  thin.maps_completed = 2;
  t.windows.push_back(thin);
  // Window 3: skewed reduces.
  TimelineWindow reduces;
  reduces.index = 3;
  reduces.t0 = 180.0;
  reduces.t1 = 240.0;
  reduces.reduces_completed = 10;
  reduces.has_reduce_durations = true;
  reduces.reduce_p50 = 100.0;
  reduces.reduce_p95 = 200.0;
  reduces.reduce_p99 = 400.0;
  t.windows.push_back(reduces);
  return t;
}

TEST(Timeline, FindsStragglerWindows) {
  const Timeline t = StragglerFixture();
  TimelineOptions opt;  // factor 3, min 5 completions
  const auto stragglers = FindStragglerWindows(t, opt);
  ASSERT_EQ(stragglers.size(), 2u);
  EXPECT_EQ(stragglers[0].window, 1);
  EXPECT_EQ(stragglers[0].kind, "map");
  EXPECT_DOUBLE_EQ(stragglers[0].ratio, 5.0);
  EXPECT_EQ(stragglers[1].window, 3);
  EXPECT_EQ(stragglers[1].kind, "reduce");
  EXPECT_DOUBLE_EQ(stragglers[1].ratio, 4.0);
}

TEST(Timeline, StragglerThresholdsAreTunable) {
  const Timeline t = StragglerFixture();
  TimelineOptions strict;
  strict.straggler_factor = 6.0;
  EXPECT_TRUE(FindStragglerWindows(t, strict).empty());
  TimelineOptions loose;
  loose.min_completions = 1;
  EXPECT_EQ(FindStragglerWindows(t, loose).size(), 3u);
}

TEST(Timeline, TextRenderListsWindowsAndStragglers) {
  const Timeline t = StragglerFixture();
  TimelineOptions opt;
  const std::string text = RenderTimeline(t, opt);
  EXPECT_NE(text.find("tool=simmr_replay"), std::string::npos);
  EXPECT_NE(text.find("straggler windows"), std::string::npos);
  EXPECT_NE(text.find("reduce"), std::string::npos);
  // No utilization fields in the fixture: the render says why.
  EXPECT_NE(text.find("no utilization columns"), std::string::npos);
}

TEST(Timeline, TextRenderWithoutStragglersSaysNone) {
  Timeline t = StragglerFixture();
  t.windows.resize(1);  // keep only the tight window
  TimelineOptions opt;
  const std::string text = RenderTimeline(t, opt);
  EXPECT_NE(text.find("none"), std::string::npos);
}

TEST(Timeline, JsonRenderEmitsTimelineSchema) {
  const Timeline t = StragglerFixture();
  TimelineOptions opt;
  opt.json = true;
  const std::string json = RenderTimeline(t, opt);
  EXPECT_EQ(json.find("{\"schema\":\"simmr.timeline.v1\""), 0u);
  EXPECT_NE(json.find("\"windows\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"stragglers\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"map\""), std::string::npos);
  EXPECT_NE(json.find("\"ratio\":5"), std::string::npos);
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace simmr::analysis
