// Deadline-miss attribution tests: miss detection and the ARIA
// feasible-vs-infeasible verdict at observed parallelism.
#include "analysis/deadline.h"

#include <gtest/gtest.h>

namespace simmr::analysis {
namespace {

using obs::TaskKind;

TaskExec Task(TaskKind kind, std::int32_t index, double start,
              double shuffle_end, double end) {
  TaskExec t;
  t.kind = kind;
  t.index = index;
  t.timing = {start, shuffle_end, end};
  t.reported = end;
  return t;
}

/// `n` sequential maps of `dur` seconds each on one slot, then one reduce.
JobRun SerialJob(int n, double dur, double deadline, double arrival = 0.0) {
  JobRun job;
  job.id = 0;
  job.name = "serial";
  job.arrival = arrival;
  job.deadline = deadline;
  double t = arrival;
  for (int i = 0; i < n; ++i) {
    job.tasks.push_back(Task(TaskKind::kMap, i, t, t, t + dur));
    t += dur;
  }
  job.map_stage_end = t;
  job.tasks.push_back(Task(TaskKind::kReduce, 0, t, t + 1.0, t + 2.0));
  job.first_start = arrival;
  job.completion = t + 2.0;
  job.completed = true;
  job.launches[0] = static_cast<std::uint64_t>(n);
  job.launches[1] = 1;
  return job;
}

TEST(Deadline, MetDeadlinesProduceNoMisses) {
  RunRecord record;
  record.jobs.push_back(SerialJob(2, 10.0, /*deadline=*/100.0));
  const DeadlineReport report = AttributeDeadlineMisses(record);
  EXPECT_EQ(report.jobs_with_deadline, 1);
  EXPECT_EQ(report.missed, 0);
  EXPECT_TRUE(report.misses.empty());
}

TEST(Deadline, JobsWithoutDeadlineAreIgnored) {
  RunRecord record;
  record.jobs.push_back(SerialJob(2, 10.0, /*deadline=*/0.0));
  const DeadlineReport report = AttributeDeadlineMisses(record);
  EXPECT_EQ(report.jobs_with_deadline, 0);
  EXPECT_EQ(report.missed, 0);
}

TEST(Deadline, InfeasibleMissWhenLowerBoundExceedsBudget) {
  // 8 maps of 10s ran strictly serially (observed parallelism 1), so even
  // the ARIA lower bound is ~80s — far past the 20s budget. No schedule at
  // one slot could have met this deadline.
  RunRecord record;
  record.jobs.push_back(SerialJob(8, 10.0, /*deadline=*/20.0));
  const DeadlineReport report = AttributeDeadlineMisses(record);
  ASSERT_EQ(report.misses.size(), 1u);
  const DeadlineMiss& miss = report.misses[0];
  EXPECT_EQ(miss.job, 0);
  EXPECT_DOUBLE_EQ(miss.allowed, 20.0);
  EXPECT_DOUBLE_EQ(miss.gap, miss.completion - 20.0);
  EXPECT_EQ(miss.observed_map_slots, 1);
  EXPECT_GT(miss.lower_bound, miss.allowed);
  EXPECT_TRUE(miss.infeasible);
  EXPECT_GE(miss.upper_bound, miss.lower_bound);
}

TEST(Deadline, ContentionMissWhenWorkFitsTheBudget) {
  // One 10s map + 2s reduce arriving at t=0 with a 30s deadline, but the
  // map only started at t=20 (slot contention): the work itself fits.
  JobRun job;
  job.id = 2;
  job.name = "starved";
  job.arrival = 0.0;
  job.deadline = 30.0;
  job.tasks = {
      Task(TaskKind::kMap, 0, 20.0, 20.0, 30.0),
      Task(TaskKind::kReduce, 0, 30.0, 31.0, 32.0),
  };
  job.map_stage_end = 30.0;
  job.first_start = 20.0;
  job.completion = 32.0;
  job.completed = true;
  RunRecord record;
  record.jobs.push_back(std::move(job));

  const DeadlineReport report = AttributeDeadlineMisses(record);
  ASSERT_EQ(report.misses.size(), 1u);
  const DeadlineMiss& miss = report.misses[0];
  EXPECT_DOUBLE_EQ(miss.scheduling_delay, 20.0);
  EXPECT_LE(miss.lower_bound, miss.allowed);
  EXPECT_FALSE(miss.infeasible);
}

TEST(Deadline, IncompleteJobsDoNotCountAsMisses) {
  JobRun job = SerialJob(4, 10.0, /*deadline=*/5.0);
  job.completed = false;
  job.completion = -1.0;
  RunRecord record;
  record.jobs.push_back(std::move(job));
  const DeadlineReport report = AttributeDeadlineMisses(record);
  EXPECT_EQ(report.jobs_with_deadline, 1);
  EXPECT_EQ(report.missed, 0);
}

}  // namespace
}  // namespace simmr::analysis
