// Critical-path extraction tests: chain walking, the filler patch-point
// segmentation and wait attribution.
#include "analysis/critical_path.h"

#include <gtest/gtest.h>

namespace simmr::analysis {
namespace {

using obs::TaskKind;

TaskExec Task(TaskKind kind, std::int32_t index, double start,
              double shuffle_end, double end, bool ok = true) {
  TaskExec t;
  t.kind = kind;
  t.index = index;
  t.timing = {start, shuffle_end, end};
  t.reported = end;
  t.succeeded = ok;
  return t;
}

TEST(CriticalPath, WalksBackFromLatestTask) {
  // map0 [0,10], map1 [0,8]; reduce0 starts when map0's slot frees.
  JobRun job;
  job.id = 1;
  job.name = "chain";
  job.arrival = 0.0;
  job.map_stage_end = 10.0;
  job.completion = 20.0;
  job.completed = true;
  job.tasks = {
      Task(TaskKind::kMap, 0, 0.0, 0.0, 10.0),
      Task(TaskKind::kMap, 1, 0.0, 0.0, 8.0),
      Task(TaskKind::kReduce, 0, 10.0, 16.0, 20.0),
  };
  const CriticalPath path = ExtractCriticalPath(job);
  ASSERT_EQ(path.steps.size(), 3u);  // map + shuffle + reduce segments
  EXPECT_STREQ(path.steps[0].phase, "map");
  EXPECT_EQ(path.steps[0].index, 0);  // map0, not the shorter map1
  EXPECT_STREQ(path.steps[1].phase, "shuffle");
  EXPECT_DOUBLE_EQ(path.steps[1].start, 10.0);
  EXPECT_DOUBLE_EQ(path.steps[1].end, 16.0);
  EXPECT_STREQ(path.steps[2].phase, "reduce");
  EXPECT_DOUBLE_EQ(path.work_seconds, 20.0);
  EXPECT_DOUBLE_EQ(path.wait_seconds, 0.0);
  EXPECT_STREQ(path.bounding_phase, "map");
}

TEST(CriticalPath, FillerReduceSplitsAtPatchPoint) {
  // First-wave reduce launched at t=0 alongside the maps: filler until the
  // map stage ends at 12, patched-in shuffle tail to 15, reduce to 17.
  JobRun job;
  job.arrival = 0.0;
  job.map_stage_end = 12.0;
  job.completion = 17.0;
  job.completed = true;
  job.tasks = {
      Task(TaskKind::kMap, 0, 0.0, 0.0, 12.0),
      Task(TaskKind::kReduce, 0, 0.0, 15.0, 17.0),
  };
  const CriticalPath path = ExtractCriticalPath(job);
  ASSERT_EQ(path.steps.size(), 3u);
  EXPECT_STREQ(path.steps[0].phase, "filler");
  EXPECT_DOUBLE_EQ(path.steps[0].start, 0.0);
  EXPECT_DOUBLE_EQ(path.steps[0].end, 12.0);
  EXPECT_STREQ(path.steps[1].phase, "first-shuffle");
  EXPECT_DOUBLE_EQ(path.steps[1].start, 12.0);
  EXPECT_DOUBLE_EQ(path.steps[1].end, 15.0);
  EXPECT_STREQ(path.steps[2].phase, "reduce");
}

TEST(CriticalPath, AttributesSlotWait) {
  // Job arrives at 5 but its only task starts at 9: 4s of slot wait.
  JobRun job;
  job.arrival = 5.0;
  job.map_stage_end = 14.0;
  job.completion = 14.0;
  job.completed = true;
  job.tasks = {Task(TaskKind::kMap, 0, 9.0, 9.0, 14.0)};
  const CriticalPath path = ExtractCriticalPath(job);
  ASSERT_EQ(path.steps.size(), 1u);
  EXPECT_DOUBLE_EQ(path.steps[0].wait_before, 4.0);
  EXPECT_DOUBLE_EQ(path.wait_seconds, 4.0);
  EXPECT_DOUBLE_EQ(path.work_seconds, 5.0);
}

TEST(CriticalPath, SkipsKilledAttempts) {
  JobRun job;
  job.arrival = 0.0;
  job.map_stage_end = 10.0;
  job.completion = 10.0;
  job.completed = true;
  job.tasks = {
      Task(TaskKind::kMap, 0, 0.0, 0.0, 9.5, /*ok=*/false),
      Task(TaskKind::kMap, 0, 0.0, 0.0, 10.0),
  };
  const CriticalPath path = ExtractCriticalPath(job);
  ASSERT_EQ(path.steps.size(), 1u);
  EXPECT_DOUBLE_EQ(path.steps[0].end, 10.0);
}

TEST(CriticalPath, IncompleteJobYieldsNoSteps) {
  JobRun job;
  job.completed = false;
  job.tasks = {Task(TaskKind::kMap, 0, 0.0, 0.0, 5.0)};
  EXPECT_TRUE(ExtractCriticalPath(job).steps.empty());
}

TEST(CriticalPath, TerminalTieBreaksTowardReduce) {
  JobRun job;
  job.arrival = 0.0;
  job.map_stage_end = 10.0;
  job.completion = 10.0;
  job.completed = true;
  job.tasks = {
      Task(TaskKind::kMap, 3, 0.0, 0.0, 10.0),
      Task(TaskKind::kReduce, 1, 0.0, 10.0, 10.0),
  };
  const CriticalPath path = ExtractCriticalPath(job);
  ASSERT_FALSE(path.steps.empty());
  EXPECT_EQ(path.steps.back().kind, TaskKind::kReduce);
}

}  // namespace
}  // namespace simmr::analysis
