// RunRecord reconstruction tests: folding an event stream into per-job
// histories, truncation tolerance, error paths and the core-metrics bridge.
#include "analysis/run_record.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/simmr.h"
#include "obs/event_log.h"
#include "sched/fifo.h"

namespace simmr::analysis {
namespace {

using obs::EventLog;
using obs::LogEvent;
using obs::TaskKind;
using obs::TaskTiming;

LogEvent Arrival(double t, std::int32_t job, const char* name,
                 double deadline = 0.0) {
  LogEvent ev;
  ev.kind = LogEvent::Kind::kJobArrival;
  ev.t = t;
  ev.job = job;
  ev.name = name;
  ev.deadline = deadline;
  return ev;
}

LogEvent Launch(double t, std::int32_t job, TaskKind kind,
                std::int32_t index) {
  LogEvent ev;
  ev.kind = LogEvent::Kind::kTaskLaunch;
  ev.t = t;
  ev.job = job;
  ev.task_kind = kind;
  ev.index = index;
  return ev;
}

LogEvent Done(double t, std::int32_t job, TaskKind kind, std::int32_t index,
              TaskTiming timing, bool succeeded = true) {
  LogEvent ev;
  ev.kind = LogEvent::Kind::kTaskCompletion;
  ev.t = t;
  ev.job = job;
  ev.task_kind = kind;
  ev.index = index;
  ev.timing = timing;
  ev.succeeded = succeeded;
  return ev;
}

LogEvent JobDone(double t, std::int32_t job) {
  LogEvent ev;
  ev.kind = LogEvent::Kind::kJobCompletion;
  ev.t = t;
  ev.job = job;
  return ev;
}

TEST(RunRecord, FoldsJobHistory) {
  EventLog log;
  log.header = {"test", "unit", "simmr"};
  log.events = {
      Arrival(0.0, 0, "job-a", 100.0),
      Launch(0.0, 0, TaskKind::kMap, 0),
      Launch(0.0, 0, TaskKind::kReduce, 0),  // filler
      Done(10.0, 0, TaskKind::kMap, 0, {0.0, 0.0, 10.0}),
      Done(18.0, 0, TaskKind::kReduce, 0, {0.0, 15.0, 18.0}),
      JobDone(18.0, 0),
  };
  const RunRecord record = RunRecord::FromLog(log);

  ASSERT_EQ(record.jobs.size(), 1u);
  const JobRun& job = record.jobs[0];
  EXPECT_EQ(job.id, 0);
  EXPECT_EQ(job.name, "job-a");
  EXPECT_EQ(job.arrival, 0.0);
  EXPECT_EQ(job.deadline, 100.0);
  EXPECT_TRUE(job.completed);
  EXPECT_EQ(job.completion, 18.0);
  EXPECT_EQ(job.map_stage_end, 10.0);
  EXPECT_EQ(job.first_start, 0.0);
  EXPECT_EQ(job.launches[0], 1u);
  EXPECT_EQ(job.launches[1], 1u);
  EXPECT_EQ(job.kills[0], 0u);
  EXPECT_EQ(job.kills[1], 0u);
  ASSERT_EQ(job.tasks.size(), 2u);
  EXPECT_EQ(record.makespan, 18.0);
  EXPECT_FALSE(job.MissedDeadline());
}

TEST(RunRecord, KilledAttemptsAreTrackedButNotTimed) {
  EventLog log;
  log.events = {
      Arrival(0.0, 0, "victim"),
      Launch(0.0, 0, TaskKind::kReduce, 0),
      Done(5.0, 0, TaskKind::kReduce, 0, {0.0, 5.0, 5.0},
           /*succeeded=*/false),
      Launch(6.0, 0, TaskKind::kReduce, 0),
      Done(12.0, 0, TaskKind::kReduce, 0, {6.0, 10.0, 12.0}),
      JobDone(12.0, 0),
  };
  const RunRecord record = RunRecord::FromLog(log);
  const JobRun& job = record.jobs[0];
  EXPECT_EQ(job.kills[1], 1u);
  EXPECT_EQ(job.launches[1], 2u);
  EXPECT_EQ(job.SucceededCount(TaskKind::kReduce), 1u);
  // first_start comes from the successful attempt, not the killed one.
  EXPECT_EQ(job.first_start, 6.0);
  ASSERT_EQ(job.tasks.size(), 2u);
  EXPECT_FALSE(job.tasks[0].succeeded);
  EXPECT_TRUE(job.tasks[1].succeeded);
}

TEST(RunRecord, TruncatedLogLeavesJobIncomplete) {
  EventLog log;
  log.events = {
      Arrival(0.0, 0, "cut-short"),
      Launch(0.0, 0, TaskKind::kMap, 0),
  };
  const RunRecord record = RunRecord::FromLog(log);
  ASSERT_EQ(record.jobs.size(), 1u);
  EXPECT_FALSE(record.jobs[0].completed);
  EXPECT_LT(record.jobs[0].completion, 0.0);
  // No successful task: first_start falls back to arrival.
  EXPECT_EQ(record.jobs[0].first_start, 0.0);
}

TEST(RunRecord, ThrowsOnEventsBeforeArrival) {
  EventLog log;
  log.events = {Launch(0.0, 7, TaskKind::kMap, 0)};
  EXPECT_THROW(RunRecord::FromLog(log), std::runtime_error);
}

TEST(RunRecord, ThrowsOnDuplicateArrival) {
  EventLog log;
  log.events = {Arrival(0.0, 0, "a"), Arrival(1.0, 0, "b")};
  EXPECT_THROW(RunRecord::FromLog(log), std::runtime_error);
}

TEST(RunRecord, PeakConcurrencyCountsOverlaps) {
  std::vector<TaskExec> tasks;
  const auto add = [&tasks](double start, double end, bool ok = true) {
    TaskExec t;
    t.kind = TaskKind::kMap;
    t.timing = {start, start, end};
    t.succeeded = ok;
    tasks.push_back(t);
  };
  add(0.0, 10.0);
  add(2.0, 8.0);
  add(3.0, 5.0);
  add(10.0, 12.0);
  add(1.0, 9.0, /*ok=*/false);  // killed: not counted
  EXPECT_EQ(PeakConcurrency(tasks, TaskKind::kMap), 3);
  EXPECT_EQ(PeakConcurrency(tasks, TaskKind::kReduce), 0);
}

TEST(RunRecord, BridgesToCoreTaskRecords) {
  EventLog log;
  log.events = {
      Arrival(0.0, 3, "bridge"),
      Done(10.0, 3, TaskKind::kMap, 0, {0.0, 0.0, 10.0}),
      Done(20.0, 3, TaskKind::kReduce, 1, {10.0, 16.0, 20.0}),
      Done(15.0, 3, TaskKind::kReduce, 2, {10.0, 12.0, 15.0},
           /*succeeded=*/false),
      JobDone(20.0, 3),
  };
  const auto records = ToSimTaskRecords(RunRecord::FromLog(log));
  ASSERT_EQ(records.size(), 2u);  // killed attempt excluded
  EXPECT_EQ(records[0].job, 3);
  EXPECT_EQ(records[0].kind, core::SimTaskKind::kMap);
  EXPECT_EQ(records[1].kind, core::SimTaskKind::kReduce);
  EXPECT_EQ(records[1].shuffle_end, 16.0);
}

TEST(RunRecord, EngineRunSurvivesLoadCycle) {
  // End to end: engine -> observer -> JSONL -> parse -> RunRecord matches
  // the engine's own result bit for bit.
  trace::JobProfile p;
  p.app_name = "uniform";
  p.num_maps = 6;
  p.num_reduces = 2;
  p.map_durations.assign(6, 10.0);
  p.first_shuffle_durations.assign(1, 3.0);
  p.typical_shuffle_durations.assign(1, 5.0);
  p.reduce_durations.assign(2, 2.0);
  trace::WorkloadTrace w(2);
  w[0].profile = p;
  w[1].profile = p;
  w[1].arrival = 7.0;

  obs::EventLogObserver observer;
  core::SimConfig cfg;
  cfg.map_slots = 2;
  cfg.reduce_slots = 2;
  cfg.observer = &observer;
  sched::FifoPolicy fifo;
  const core::SimResult result = core::Replay(w, fifo, cfg);

  std::istringstream in(observer.ToJsonl({"test", "cycle", "simmr"}));
  const RunRecord record = RunRecord::FromLog(obs::ParseEventLog(in));

  ASSERT_EQ(record.jobs.size(), result.jobs.size());
  for (const core::JobResult& expected : result.jobs) {
    const JobRun* job = record.FindJob(static_cast<std::int32_t>(expected.job));
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->arrival, expected.arrival);
    EXPECT_EQ(job->completion, expected.completion);  // bit-exact
    EXPECT_EQ(job->map_stage_end, expected.map_stage_end);
    EXPECT_EQ(job->first_start, expected.first_launch);
  }
  EXPECT_EQ(record.makespan, result.makespan);
}

}  // namespace
}  // namespace simmr::analysis
