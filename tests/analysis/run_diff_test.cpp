// Run-diff tests: identity, first-divergence ordering, name and id
// alignment, and phase attribution of completion deltas.
#include "analysis/run_diff.h"

#include <gtest/gtest.h>

namespace simmr::analysis {
namespace {

using obs::TaskKind;

TaskExec Task(TaskKind kind, std::int32_t index, double start,
              double shuffle_end, double end) {
  TaskExec t;
  t.kind = kind;
  t.index = index;
  t.timing = {start, shuffle_end, end};
  t.reported = end;
  return t;
}

JobRun SimpleJob(std::int32_t id, const std::string& name,
                 double map_end = 10.0, double shuffle_end = 16.0,
                 double end = 20.0) {
  JobRun job;
  job.id = id;
  job.name = name;
  job.arrival = 0.0;
  job.tasks = {
      Task(TaskKind::kMap, 0, 0.0, 0.0, map_end),
      Task(TaskKind::kReduce, 0, map_end, shuffle_end, end),
  };
  job.map_stage_end = map_end;
  job.first_start = 0.0;
  job.completion = end;
  job.completed = true;
  job.launches[0] = 1;
  job.launches[1] = 1;
  return job;
}

TEST(RunDiff, IdenticalRunsAreIdentical) {
  RunRecord a, b;
  a.jobs = {SimpleJob(0, "wc"), SimpleJob(1, "sort")};
  b.jobs = {SimpleJob(0, "wc"), SimpleJob(1, "sort")};
  const RunDiff diff = DiffRuns(a, b);
  EXPECT_TRUE(diff.identical);
  EXPECT_TRUE(diff.first_divergence.empty());
  ASSERT_EQ(diff.jobs.size(), 2u);
  EXPECT_DOUBLE_EQ(diff.max_abs_completion_delta, 0.0);
  EXPECT_STREQ(diff.jobs[0].dominant_phase, "none");
}

TEST(RunDiff, ReportsEarliestDivergence) {
  RunRecord a, b;
  a.jobs = {SimpleJob(0, "wc"), SimpleJob(1, "sort")};
  b.jobs = {SimpleJob(0, "wc"), SimpleJob(1, "sort")};
  // Late divergence in job 0 (reduce end 20 -> 21), early one in job 1
  // (map end 10 -> 9): the earlier one must win regardless of job order.
  b.jobs[0].tasks[1].timing.end = 21.0;
  b.jobs[0].completion = 21.0;
  b.jobs[1].tasks[0].timing.end = 9.0;
  b.jobs[1].map_stage_end = 9.0;
  const RunDiff diff = DiffRuns(a, b);
  ASSERT_FALSE(diff.identical);
  EXPECT_NE(diff.first_divergence.find("sort"), std::string::npos)
      << diff.first_divergence;
  EXPECT_NE(diff.first_divergence.find("map[0] end differs"),
            std::string::npos)
      << diff.first_divergence;
  EXPECT_DOUBLE_EQ(diff.first_divergence_time, 9.0);
}

TEST(RunDiff, ShuffleDeltaDominates) {
  // Run b has no shuffle model (the Mumak case): shuffle_end == start of
  // the reduce phase. The per-job delta must blame "shuffle".
  RunRecord a, b;
  a.jobs = {SimpleJob(0, "wc", 10.0, /*shuffle_end=*/16.0, /*end=*/20.0)};
  b.jobs = {SimpleJob(0, "wc", 10.0, /*shuffle_end=*/10.0, /*end=*/14.0)};
  const RunDiff diff = DiffRuns(a, b);
  ASSERT_EQ(diff.jobs.size(), 1u);
  const JobDelta& delta = diff.jobs[0];
  EXPECT_STREQ(delta.dominant_phase, "shuffle");
  EXPECT_DOUBLE_EQ(delta.shuffle_avg_a, 6.0);
  EXPECT_DOUBLE_EQ(delta.shuffle_avg_b, 0.0);
  EXPECT_DOUBLE_EQ(delta.shuffle_delta, -6.0);
  EXPECT_DOUBLE_EQ(delta.completion_delta, -6.0);
  EXPECT_DOUBLE_EQ(diff.max_abs_completion_delta, 6.0);
  EXPECT_DOUBLE_EQ(diff.mean_abs_completion_delta, 6.0);
}

TEST(RunDiff, DuplicateNamesAlignByOccurrence) {
  RunRecord a, b;
  a.jobs = {SimpleJob(0, "wc"), SimpleJob(1, "wc", 10.0, 16.0, 25.0)};
  b.jobs = {SimpleJob(0, "wc"), SimpleJob(1, "wc", 10.0, 16.0, 25.0)};
  const RunDiff diff = DiffRuns(a, b);
  EXPECT_TRUE(diff.identical);
  ASSERT_EQ(diff.jobs.size(), 2u);
  EXPECT_EQ(diff.jobs[1].name, "wc@1");
}

TEST(RunDiff, RenamedJobsFallBackToIdAlignment) {
  // Different tools label the same job differently; ids still match.
  RunRecord a, b;
  a.jobs = {SimpleJob(0, "WordCount")};
  b.jobs = {SimpleJob(0, "WordCount/wiki-40GB")};
  const RunDiff diff = DiffRuns(a, b);
  EXPECT_TRUE(diff.identical);
  ASSERT_EQ(diff.jobs.size(), 1u);
  EXPECT_TRUE(diff.only_in_a.empty());
  EXPECT_TRUE(diff.only_in_b.empty());
}

TEST(RunDiff, UnmatchedJobsAreReported) {
  RunRecord a, b;
  a.jobs = {SimpleJob(0, "wc"), SimpleJob(1, "extra-a")};
  b.jobs = {SimpleJob(0, "wc"), SimpleJob(5, "extra-b")};
  const RunDiff diff = DiffRuns(a, b);
  ASSERT_FALSE(diff.identical);
  ASSERT_EQ(diff.only_in_a.size(), 1u);
  EXPECT_EQ(diff.only_in_a[0], "extra-a");
  ASSERT_EQ(diff.only_in_b.size(), 1u);
  EXPECT_EQ(diff.only_in_b[0], "extra-b");
  EXPECT_EQ(diff.jobs.size(), 1u);
}

TEST(RunDiff, MissingTaskAttemptIsDivergence) {
  RunRecord a, b;
  a.jobs = {SimpleJob(0, "wc")};
  b.jobs = {SimpleJob(0, "wc")};
  b.jobs[0].tasks.push_back(Task(TaskKind::kReduce, 1, 20.0, 24.0, 26.0));
  const RunDiff diff = DiffRuns(a, b);
  ASSERT_FALSE(diff.identical);
  EXPECT_NE(diff.first_divergence.find("attempt counts differ"),
            std::string::npos)
      << diff.first_divergence;
}

TEST(RunDiff, KilledVsSucceededIsDivergence) {
  RunRecord a, b;
  a.jobs = {SimpleJob(0, "wc")};
  b.jobs = {SimpleJob(0, "wc")};
  b.jobs[0].tasks[1].succeeded = false;
  const RunDiff diff = DiffRuns(a, b);
  ASSERT_FALSE(diff.identical);
  EXPECT_NE(diff.first_divergence.find("outcome differs"), std::string::npos)
      << diff.first_divergence;
}

}  // namespace
}  // namespace simmr::analysis
