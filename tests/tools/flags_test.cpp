#include "tool_common.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <vector>

#include "simcore/parallel.h"

namespace simmr::tools {
namespace {

std::vector<FlagSpec> Specs() {
  return {
      {"name", "default", "a string flag"},
      {"count", "3", "an integer flag"},
      {"rate", "1.5", "a floating flag"},
      {"verbose", "false", "a boolean flag", /*is_boolean=*/true},
      {"threads", "0", "worker threads", /*is_boolean=*/false,
       /*short_name=*/"j"},
  };
}

std::optional<Flags> ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags::Parse(static_cast<int>(args.size()),
                      const_cast<char**>(args.data()), "test tool", Specs());
}

TEST(Flags, DefaultsApplyWhenUnset) {
  const auto flags = ParseArgs({});
  ASSERT_TRUE(flags.has_value());
  EXPECT_EQ(flags->Get("name"), "default");
  EXPECT_EQ(flags->GetInt("count"), 3);
  EXPECT_DOUBLE_EQ(flags->GetDouble("rate"), 1.5);
  EXPECT_FALSE(flags->GetBool("verbose"));
}

TEST(Flags, EqualsFormParses) {
  const auto flags = ParseArgs({"--name=alpha", "--count=7", "--rate=2.25"});
  ASSERT_TRUE(flags.has_value());
  EXPECT_EQ(flags->Get("name"), "alpha");
  EXPECT_EQ(flags->GetInt("count"), 7);
  EXPECT_DOUBLE_EQ(flags->GetDouble("rate"), 2.25);
}

TEST(Flags, SpaceFormParses) {
  const auto flags = ParseArgs({"--name", "beta", "--count", "9"});
  ASSERT_TRUE(flags.has_value());
  EXPECT_EQ(flags->Get("name"), "beta");
  EXPECT_EQ(flags->GetInt("count"), 9);
}

TEST(Flags, BareBooleanSetsTrue) {
  const auto flags = ParseArgs({"--verbose"});
  ASSERT_TRUE(flags.has_value());
  EXPECT_TRUE(flags->GetBool("verbose"));
}

TEST(Flags, BooleanAcceptsExplicitValues) {
  EXPECT_TRUE(ParseArgs({"--verbose=1"})->GetBool("verbose"));
  EXPECT_TRUE(ParseArgs({"--verbose=yes"})->GetBool("verbose"));
  EXPECT_FALSE(ParseArgs({"--verbose=false"})->GetBool("verbose"));
}

TEST(Flags, UnknownFlagFailsParse) {
  EXPECT_FALSE(ParseArgs({"--nope=1"}).has_value());
  EXPECT_TRUE(Flags::LastParseFailed());
}

TEST(Flags, PositionalArgumentFailsParse) {
  EXPECT_FALSE(ParseArgs({"stray"}).has_value());
  EXPECT_TRUE(Flags::LastParseFailed());
}

TEST(Flags, MissingValueFailsParse) {
  EXPECT_FALSE(ParseArgs({"--name"}).has_value());
  EXPECT_TRUE(Flags::LastParseFailed());
}

TEST(Flags, HelpReturnsNulloptWithoutFailure) {
  EXPECT_FALSE(ParseArgs({"--help"}).has_value());
  EXPECT_FALSE(Flags::LastParseFailed());
}

TEST(Flags, BadNumericValueThrowsOnAccess) {
  const auto flags = ParseArgs({"--count=abc", "--rate=1.2.3"});
  ASSERT_TRUE(flags.has_value());
  EXPECT_THROW(flags->GetInt("count"), std::exception);
  EXPECT_THROW(flags->GetDouble("rate"), std::invalid_argument);
}

TEST(Flags, UndeclaredFlagAccessThrows) {
  const auto flags = ParseArgs({});
  ASSERT_TRUE(flags.has_value());
  EXPECT_THROW(flags->Get("ghost"), std::logic_error);
}

TEST(Flags, LaterValueWins) {
  const auto flags = ParseArgs({"--name=a", "--name=b"});
  ASSERT_TRUE(flags.has_value());
  EXPECT_EQ(flags->Get("name"), "b");
}

TEST(Flags, ShortAliasParsesBothForms) {
  EXPECT_EQ(ParseArgs({"-j", "4"})->GetInt("threads"), 4);
  EXPECT_EQ(ParseArgs({"-j=8"})->GetInt("threads"), 8);
  // The alias stores under the canonical long name, so the long form and
  // later-value-wins behave as usual.
  EXPECT_EQ(ParseArgs({"-j", "4", "--threads=2"})->GetInt("threads"), 2);
}

TEST(Flags, UnknownShortFlagFailsParse) {
  EXPECT_FALSE(ParseArgs({"-q", "4"}).has_value());
  EXPECT_TRUE(Flags::LastParseFailed());
}

TEST(Flags, ShortAliasMissingValueFailsParse) {
  EXPECT_FALSE(ParseArgs({"-j"}).has_value());
  EXPECT_TRUE(Flags::LastParseFailed());
}

// RAII save/restore for the SIMMR_THREADS environment variable.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* old = std::getenv("SIMMR_THREADS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv("SIMMR_THREADS", value, 1);
    } else {
      ::unsetenv("SIMMR_THREADS");
    }
  }
  ~ScopedThreadsEnv() {
    if (had_old_) {
      ::setenv("SIMMR_THREADS", old_.c_str(), 1);
    } else {
      ::unsetenv("SIMMR_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

std::optional<Flags> ParseThreadsArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags::Parse(static_cast<int>(args.size()),
                      const_cast<char**>(args.data()), "test tool",
                      {ThreadsFlag()});
}

TEST(ResolveThreads, ExplicitFlagWinsOverEnvironment) {
  const ScopedThreadsEnv env("6");
  EXPECT_EQ(ResolveThreads(*ParseThreadsArgs({"--threads=3"})), 3);
  EXPECT_EQ(ResolveThreads(*ParseThreadsArgs({"-j", "5"})), 5);
}

TEST(ResolveThreads, EnvironmentWinsOverAutoDetect) {
  const ScopedThreadsEnv env("6");
  EXPECT_EQ(ResolveThreads(*ParseThreadsArgs({})), 6);
}

TEST(ResolveThreads, AutoDetectWithoutFlagOrEnvironment) {
  const ScopedThreadsEnv env(nullptr);
  EXPECT_EQ(ResolveThreads(*ParseThreadsArgs({})),
            static_cast<int>(DefaultParallelism()));
}

TEST(ResolveThreads, NonPositiveEnvironmentFallsThrough) {
  const ScopedThreadsEnv env("0");
  EXPECT_EQ(ResolveThreads(*ParseThreadsArgs({})),
            static_cast<int>(DefaultParallelism()));
  const ScopedThreadsEnv junk("lots");
  EXPECT_EQ(ResolveThreads(*ParseThreadsArgs({})),
            static_cast<int>(DefaultParallelism()));
}

TEST(ResolveThreads, NegativeFlagThrows) {
  EXPECT_THROW(ResolveThreads(*ParseThreadsArgs({"--threads=-2"})),
               std::invalid_argument);
}

TEST(ThreadsFlag, SharedSpecHasTheShortAlias) {
  const FlagSpec spec = ThreadsFlag();
  EXPECT_EQ(spec.name, "threads");
  EXPECT_EQ(spec.short_name, "j");
  EXPECT_EQ(spec.default_value, "0");
  EXPECT_FALSE(spec.is_boolean);
}

TEST(LogLevel, ParsesEveryLevelName) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("loud").has_value());
  EXPECT_FALSE(ParseLogLevel("").has_value());
  EXPECT_FALSE(ParseLogLevel("Info").has_value());  // case-sensitive
}

TEST(LogLevel, ApplyLogLevelSetsGlobalThreshold) {
  const LogLevel saved = GetLogLevel();
  std::vector<const char*> args{"prog", "--log-level=error"};
  const auto flags =
      Flags::Parse(static_cast<int>(args.size()),
                   const_cast<char**>(args.data()), "test tool",
                   {LogLevelFlag()});
  ASSERT_TRUE(flags.has_value());
  EXPECT_TRUE(ApplyLogLevel(*flags));
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(saved);
}

TEST(LogLevel, ApplyLogLevelRejectsUnknownName) {
  const LogLevel saved = GetLogLevel();
  std::vector<const char*> args{"prog", "--log-level=loud"};
  const auto flags =
      Flags::Parse(static_cast<int>(args.size()),
                   const_cast<char**>(args.data()), "test tool",
                   {LogLevelFlag()});
  ASSERT_TRUE(flags.has_value());
  EXPECT_FALSE(ApplyLogLevel(*flags));
  EXPECT_EQ(GetLogLevel(), saved);  // unchanged on failure
}

std::optional<Flags> ParseObsArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags::Parse(static_cast<int>(args.size()),
                      const_cast<char**>(args.data()), "test tool",
                      ObservabilityFlagSpecs());
}

TEST(ObservabilitySinks, SharedSpecsCoverEveryOutputFlag) {
  const auto specs = ObservabilityFlagSpecs();
  const auto has = [&specs](const std::string& name) {
    for (const FlagSpec& spec : specs) {
      if (spec.name == name) return spec.default_value.empty();
    }
    return false;
  };
  EXPECT_TRUE(has("trace-out"));
  EXPECT_TRUE(has("metrics-out"));
  EXPECT_TRUE(has("telemetry-out"));
  EXPECT_TRUE(has("event-log-out"));
}

TEST(ObservabilitySinks, NoFlagsMeansNullObserver) {
  const auto flags = ParseObsArgs({});
  ASSERT_TRUE(flags.has_value());
  ObservabilitySinks sinks;
  sinks.Init(*flags);
  // Null observer keeps the engine on its zero-cost path.
  EXPECT_EQ(sinks.observer(), nullptr);
}

TEST(ObservabilitySinks, RequestedOutputsAreWritten) {
  const std::string dir = ::testing::TempDir();
  const std::string metrics_path = dir + "/sinks_metrics.txt";
  const std::string event_log_path = dir + "/sinks_events.jsonl";
  const std::string metrics_flag = "--metrics-out=" + metrics_path;
  const std::string event_log_flag = "--event-log-out=" + event_log_path;
  const auto flags =
      ParseObsArgs({metrics_flag.c_str(), event_log_flag.c_str()});
  ASSERT_TRUE(flags.has_value());

  ObservabilitySinks sinks;
  sinks.Init(*flags);
  ASSERT_NE(sinks.observer(), nullptr);
  ASSERT_NE(sinks.metrics(), nullptr);
  ASSERT_NE(sinks.event_log(), nullptr);
  sinks.observer()->OnJobArrival(0.0, 0, "unit-job", 0.0);
  sinks.observer()->OnJobCompletion(5.0, 0);

  RunSummary summary;
  summary.tool = "flags_test";
  summary.scenario = "unit";
  summary.simulator = "simmr";
  summary.wall_seconds = 0.001;
  summary.events_processed = 2;
  summary.jobs = 1;
  summary.makespan = 5.0;
  sinks.Write(summary);

  const obs::EventLog log = obs::ReadEventLogFile(event_log_path);
  EXPECT_EQ(log.header.tool, "flags_test");
  EXPECT_EQ(log.header.simulator, "simmr");
  ASSERT_EQ(log.events.size(), 2u);
  EXPECT_EQ(log.events[0].kind, obs::LogEvent::Kind::kJobArrival);

  std::ifstream metrics(metrics_path);
  ASSERT_TRUE(metrics.good());
  const std::string text((std::istreambuf_iterator<char>(metrics)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("simmr_jobs_completed_total 1"), std::string::npos);
}

}  // namespace
}  // namespace simmr::tools
