#include "tool_common.h"

#include <gtest/gtest.h>

#include <vector>

namespace simmr::tools {
namespace {

std::vector<FlagSpec> Specs() {
  return {
      {"name", "default", "a string flag"},
      {"count", "3", "an integer flag"},
      {"rate", "1.5", "a floating flag"},
      {"verbose", "false", "a boolean flag", /*is_boolean=*/true},
  };
}

std::optional<Flags> ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags::Parse(static_cast<int>(args.size()),
                      const_cast<char**>(args.data()), "test tool", Specs());
}

TEST(Flags, DefaultsApplyWhenUnset) {
  const auto flags = ParseArgs({});
  ASSERT_TRUE(flags.has_value());
  EXPECT_EQ(flags->Get("name"), "default");
  EXPECT_EQ(flags->GetInt("count"), 3);
  EXPECT_DOUBLE_EQ(flags->GetDouble("rate"), 1.5);
  EXPECT_FALSE(flags->GetBool("verbose"));
}

TEST(Flags, EqualsFormParses) {
  const auto flags = ParseArgs({"--name=alpha", "--count=7", "--rate=2.25"});
  ASSERT_TRUE(flags.has_value());
  EXPECT_EQ(flags->Get("name"), "alpha");
  EXPECT_EQ(flags->GetInt("count"), 7);
  EXPECT_DOUBLE_EQ(flags->GetDouble("rate"), 2.25);
}

TEST(Flags, SpaceFormParses) {
  const auto flags = ParseArgs({"--name", "beta", "--count", "9"});
  ASSERT_TRUE(flags.has_value());
  EXPECT_EQ(flags->Get("name"), "beta");
  EXPECT_EQ(flags->GetInt("count"), 9);
}

TEST(Flags, BareBooleanSetsTrue) {
  const auto flags = ParseArgs({"--verbose"});
  ASSERT_TRUE(flags.has_value());
  EXPECT_TRUE(flags->GetBool("verbose"));
}

TEST(Flags, BooleanAcceptsExplicitValues) {
  EXPECT_TRUE(ParseArgs({"--verbose=1"})->GetBool("verbose"));
  EXPECT_TRUE(ParseArgs({"--verbose=yes"})->GetBool("verbose"));
  EXPECT_FALSE(ParseArgs({"--verbose=false"})->GetBool("verbose"));
}

TEST(Flags, UnknownFlagFailsParse) {
  EXPECT_FALSE(ParseArgs({"--nope=1"}).has_value());
  EXPECT_TRUE(Flags::LastParseFailed());
}

TEST(Flags, PositionalArgumentFailsParse) {
  EXPECT_FALSE(ParseArgs({"stray"}).has_value());
  EXPECT_TRUE(Flags::LastParseFailed());
}

TEST(Flags, MissingValueFailsParse) {
  EXPECT_FALSE(ParseArgs({"--name"}).has_value());
  EXPECT_TRUE(Flags::LastParseFailed());
}

TEST(Flags, HelpReturnsNulloptWithoutFailure) {
  EXPECT_FALSE(ParseArgs({"--help"}).has_value());
  EXPECT_FALSE(Flags::LastParseFailed());
}

TEST(Flags, BadNumericValueThrowsOnAccess) {
  const auto flags = ParseArgs({"--count=abc", "--rate=1.2.3"});
  ASSERT_TRUE(flags.has_value());
  EXPECT_THROW(flags->GetInt("count"), std::exception);
  EXPECT_THROW(flags->GetDouble("rate"), std::invalid_argument);
}

TEST(Flags, UndeclaredFlagAccessThrows) {
  const auto flags = ParseArgs({});
  ASSERT_TRUE(flags.has_value());
  EXPECT_THROW(flags->Get("ghost"), std::logic_error);
}

TEST(Flags, LaterValueWins) {
  const auto flags = ParseArgs({"--name=a", "--name=b"});
  ASSERT_TRUE(flags.has_value());
  EXPECT_EQ(flags->Get("name"), "b");
}

TEST(LogLevel, ParsesEveryLevelName) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("loud").has_value());
  EXPECT_FALSE(ParseLogLevel("").has_value());
  EXPECT_FALSE(ParseLogLevel("Info").has_value());  // case-sensitive
}

TEST(LogLevel, ApplyLogLevelSetsGlobalThreshold) {
  const LogLevel saved = GetLogLevel();
  std::vector<const char*> args{"prog", "--log-level=error"};
  const auto flags =
      Flags::Parse(static_cast<int>(args.size()),
                   const_cast<char**>(args.data()), "test tool",
                   {LogLevelFlag()});
  ASSERT_TRUE(flags.has_value());
  EXPECT_TRUE(ApplyLogLevel(*flags));
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(saved);
}

TEST(LogLevel, ApplyLogLevelRejectsUnknownName) {
  const LogLevel saved = GetLogLevel();
  std::vector<const char*> args{"prog", "--log-level=loud"};
  const auto flags =
      Flags::Parse(static_cast<int>(args.size()),
                   const_cast<char**>(args.data()), "test tool",
                   {LogLevelFlag()});
  ASSERT_TRUE(flags.has_value());
  EXPECT_FALSE(ApplyLogLevel(*flags));
  EXPECT_EQ(GetLogLevel(), saved);  // unchanged on failure
}

}  // namespace
}  // namespace simmr::tools
