#include "core/metrics.h"

#include <gtest/gtest.h>

namespace simmr::core {
namespace {

JobResult Job(double completion, double deadline) {
  JobResult j;
  j.completion = completion;
  j.deadline = deadline;
  return j;
}

TEST(RelativeDeadlineExceededTest, ZeroWhenAllMeet) {
  const std::vector<JobResult> jobs{Job(50.0, 100.0), Job(99.0, 100.0)};
  EXPECT_DOUBLE_EQ(RelativeDeadlineExceeded(jobs), 0.0);
  EXPECT_EQ(MissedDeadlineCount(jobs), 0);
}

TEST(RelativeDeadlineExceededTest, SumsRelativeOverruns) {
  // (150-100)/100 + (300-200)/200 = 0.5 + 0.5 = 1.0.
  const std::vector<JobResult> jobs{Job(150.0, 100.0), Job(300.0, 200.0)};
  EXPECT_DOUBLE_EQ(RelativeDeadlineExceeded(jobs), 1.0);
  EXPECT_EQ(MissedDeadlineCount(jobs), 2);
}

TEST(RelativeDeadlineExceededTest, SkipsJobsWithoutDeadline) {
  const std::vector<JobResult> jobs{Job(150.0, 0.0), Job(150.0, 100.0)};
  EXPECT_DOUBLE_EQ(RelativeDeadlineExceeded(jobs), 0.5);
  EXPECT_EQ(MissedDeadlineCount(jobs), 1);
}

TEST(RelativeDeadlineExceededTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(RelativeDeadlineExceeded({}), 0.0);
}

TEST(JobResultTest, CompletionTimeAndMissedDeadline) {
  JobResult j;
  j.arrival = 10.0;
  j.completion = 35.0;
  j.deadline = 30.0;
  EXPECT_DOUBLE_EQ(j.CompletionTime(), 25.0);
  EXPECT_TRUE(j.MissedDeadline());
  j.deadline = 40.0;
  EXPECT_FALSE(j.MissedDeadline());
  j.deadline = 0.0;
  EXPECT_FALSE(j.MissedDeadline());
}

SimTaskRecord Task(SimTaskKind kind, double start, double shuffle_end,
                   double end) {
  SimTaskRecord t;
  t.kind = kind;
  t.start = start;
  t.shuffle_end = shuffle_end;
  t.end = end;
  return t;
}

TEST(ProgressSeriesTest, CountsPhasesAtSamplePoints) {
  const std::vector<SimTaskRecord> tasks{
      Task(SimTaskKind::kMap, 0.0, 0.0, 10.0),
      Task(SimTaskKind::kMap, 0.0, 0.0, 20.0),
      Task(SimTaskKind::kReduce, 5.0, 15.0, 25.0),
  };
  const auto series = ProgressSeries(tasks, 0.0, 30.0, 5.0);
  ASSERT_EQ(series.size(), 7u);
  // t=0: two maps, no reduce activity.
  EXPECT_EQ(series[0].maps, 2);
  EXPECT_EQ(series[0].shuffles, 0);
  // t=5: two maps + one shuffle.
  EXPECT_EQ(series[1].maps, 2);
  EXPECT_EQ(series[1].shuffles, 1);
  // t=10: first map ended (half-open interval), shuffle continues.
  EXPECT_EQ(series[2].maps, 1);
  EXPECT_EQ(series[2].shuffles, 1);
  EXPECT_EQ(series[2].reduces, 0);
  // t=15: shuffle phase over, reduce phase running.
  EXPECT_EQ(series[3].shuffles, 0);
  EXPECT_EQ(series[3].reduces, 1);
  // t=25: everything done.
  EXPECT_EQ(series[5].maps, 0);
  EXPECT_EQ(series[5].reduces, 0);
}

TEST(ProgressSeriesTest, RejectsNonpositiveStep) {
  EXPECT_THROW(ProgressSeries({}, 0.0, 1.0, 0.0), std::invalid_argument);
}

TEST(ProgressSeriesTest, EmptyTasksGiveZeroSeries) {
  const auto series = ProgressSeries({}, 0.0, 10.0, 5.0);
  ASSERT_EQ(series.size(), 3u);
  for (const auto& p : series) {
    EXPECT_EQ(p.maps + p.shuffles + p.reduces, 0);
  }
}

}  // namespace
}  // namespace simmr::core
