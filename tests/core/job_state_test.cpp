#include "core/job_state.h"

#include <gtest/gtest.h>

namespace simmr::core {
namespace {

trace::JobProfile Profile() {
  trace::JobProfile p;
  p.num_maps = 3;
  p.num_reduces = 2;
  p.map_durations = {1.0, 2.0, 3.0};
  p.first_shuffle_durations = {4.0};
  p.typical_shuffle_durations = {5.0};
  p.reduce_durations = {6.0, 7.0};
  return p;
}

TEST(DurationPoolTest, IteratesInOrder) {
  const std::vector<double> values{1.0, 2.0, 3.0};
  DurationPool pool(&values);
  EXPECT_DOUBLE_EQ(pool.Next(), 1.0);
  EXPECT_DOUBLE_EQ(pool.Next(), 2.0);
  EXPECT_DOUBLE_EQ(pool.Next(), 3.0);
  EXPECT_EQ(pool.overflow_count(), 0u);
}

TEST(DurationPoolTest, WrapsAndCountsOverflow) {
  const std::vector<double> values{1.0, 2.0};
  DurationPool pool(&values);
  (void)pool.Next();
  (void)pool.Next();
  EXPECT_DOUBLE_EQ(pool.Next(), 1.0);
  EXPECT_EQ(pool.overflow_count(), 1u);
  (void)pool.Next();
  EXPECT_DOUBLE_EQ(pool.Next(), 1.0);
  EXPECT_EQ(pool.overflow_count(), 2u);
}

TEST(DurationPoolTest, EmptyPoolThrows) {
  DurationPool pool;
  EXPECT_FALSE(pool.HasSamples());
  EXPECT_THROW(pool.Next(), std::logic_error);
  const std::vector<double> empty;
  DurationPool pool2(&empty);
  EXPECT_THROW(pool2.Next(), std::logic_error);
}

TEST(JobStateTest, ExposesProfileAndIdentity) {
  const trace::JobProfile p = Profile();
  JobState job(7, p, 12.0, 99.0, 44.0);
  EXPECT_EQ(job.id(), 7);
  EXPECT_EQ(job.num_maps(), 3);
  EXPECT_EQ(job.num_reduces(), 2);
  EXPECT_DOUBLE_EQ(job.arrival(), 12.0);
  EXPECT_DOUBLE_EQ(job.deadline(), 99.0);
  EXPECT_DOUBLE_EQ(job.solo_completion(), 44.0);
}

TEST(JobStateTest, PendingAndRunningCounters) {
  const trace::JobProfile p = Profile();
  JobState job(0, p, 0.0, 0.0, 0.0);
  EXPECT_TRUE(job.HasPendingMap());
  job.maps_launched = 3;
  EXPECT_FALSE(job.HasPendingMap());
  job.maps_completed = 1;
  EXPECT_EQ(job.RunningMaps(), 2);
  EXPECT_FALSE(job.MapsDone());
  job.maps_completed = 3;
  EXPECT_TRUE(job.MapsDone());
  EXPECT_FALSE(job.Done());
  job.reduces_completed = 2;
  EXPECT_TRUE(job.Done());
}

TEST(JobStateTest, GateThresholdCeilsFraction) {
  const trace::JobProfile p = Profile();  // 3 maps
  JobState job(0, p, 0.0, 0.0, 0.0);
  EXPECT_EQ(job.ReduceGateThreshold(0.0), 0);
  EXPECT_EQ(job.ReduceGateThreshold(0.05), 1);  // ceil(0.15)
  EXPECT_EQ(job.ReduceGateThreshold(0.5), 2);   // ceil(1.5)
  EXPECT_EQ(job.ReduceGateThreshold(1.0), 3);
}

TEST(JobStateTest, ShufflePoolFallbacks) {
  // Only first-shuffle samples: typical draws fall back to them.
  trace::JobProfile p = Profile();
  p.typical_shuffle_durations.clear();
  JobState job(0, p, 0.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(job.NextTypicalShuffleDuration(), 4.0);

  // Only typical samples: first-shuffle draws fall back to them.
  trace::JobProfile q = Profile();
  q.first_shuffle_durations.clear();
  JobState job2(0, q, 0.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(job2.NextFirstShuffleDuration(), 5.0);
}

TEST(JobStateTest, NoShuffleSamplesGiveZero) {
  trace::JobProfile p = Profile();
  p.first_shuffle_durations.clear();
  p.typical_shuffle_durations.clear();
  JobState job(0, p, 0.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(job.NextFirstShuffleDuration(), 0.0);
  EXPECT_DOUBLE_EQ(job.NextTypicalShuffleDuration(), 0.0);
}

TEST(JobStateTest, DurationCursorsAreIndependent) {
  const trace::JobProfile p = Profile();
  JobState job(0, p, 0.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(job.NextMapDuration(), 1.0);
  EXPECT_DOUBLE_EQ(job.NextReduceDuration(), 6.0);
  EXPECT_DOUBLE_EQ(job.NextMapDuration(), 2.0);
  EXPECT_DOUBLE_EQ(job.NextFirstShuffleDuration(), 4.0);
  EXPECT_DOUBLE_EQ(job.NextReduceDuration(), 7.0);
  EXPECT_DOUBLE_EQ(job.NextMapDuration(), 3.0);
}

}  // namespace
}  // namespace simmr::core
