#include "core/sim_log.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "core/simmr.h"
#include "sched/fifo.h"

namespace simmr::core {
namespace {

SimResult SampleResult() {
  trace::JobProfile p;
  p.app_name = "sample";
  p.num_maps = 4;
  p.num_reduces = 2;
  p.map_durations.assign(4, 10.0);
  p.first_shuffle_durations.assign(1, 3.0);
  p.typical_shuffle_durations.assign(1, 5.0);
  p.reduce_durations.assign(2, 2.0);
  trace::WorkloadTrace w(1);
  w[0].profile = p;
  w[0].deadline = 100.0;
  SimConfig cfg;
  cfg.map_slots = 2;
  cfg.reduce_slots = 2;
  cfg.record_tasks = true;
  sched::FifoPolicy fifo;
  SimulatorEngine engine(cfg, fifo);
  return engine.Run(w);
}

TEST(SimLog, RoundTripPreservesJobsAndTasks) {
  const SimResult original = SampleResult();
  std::stringstream buffer;
  WriteSimulationLog(buffer, original);
  const SimResult loaded = ReadSimulationLog(buffer);

  ASSERT_EQ(loaded.jobs.size(), original.jobs.size());
  ASSERT_EQ(loaded.tasks.size(), original.tasks.size());
  EXPECT_EQ(loaded.events_processed, original.events_processed);
  EXPECT_NEAR(loaded.makespan, original.makespan, 1e-6);
  for (std::size_t i = 0; i < original.jobs.size(); ++i) {
    EXPECT_EQ(loaded.jobs[i].job, original.jobs[i].job);
    EXPECT_EQ(loaded.jobs[i].name, original.jobs[i].name);
    EXPECT_NEAR(loaded.jobs[i].completion, original.jobs[i].completion, 1e-6);
    EXPECT_NEAR(loaded.jobs[i].deadline, original.jobs[i].deadline, 1e-6);
  }
  for (std::size_t i = 0; i < original.tasks.size(); ++i) {
    EXPECT_EQ(loaded.tasks[i].kind, original.tasks[i].kind);
    EXPECT_NEAR(loaded.tasks[i].shuffle_end, original.tasks[i].shuffle_end,
                1e-6);
  }
}

TEST(SimLog, FileRoundTrip) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "simmr_simlog_test.log";
  const SimResult original = SampleResult();
  WriteSimulationLogFile(path.string(), original);
  const SimResult loaded = ReadSimulationLogFile(path.string());
  EXPECT_EQ(loaded.jobs.size(), original.jobs.size());
  fs::remove(path);
}

TEST(SimLog, RejectsBadMagic) {
  std::stringstream buffer("WRONG\n");
  EXPECT_THROW(ReadSimulationLog(buffer), std::runtime_error);
}

TEST(SimLog, RejectsTruncatedLog) {
  const SimResult original = SampleResult();
  std::stringstream buffer;
  WriteSimulationLog(buffer, original);
  std::string text = buffer.str();
  text.resize(text.rfind("SIMTASK"));  // drop the last task line
  std::stringstream cut(text);
  EXPECT_THROW(ReadSimulationLog(cut), std::runtime_error);
}

TEST(SimLog, RejectsUnknownRecord) {
  std::stringstream buffer(
      "SIMMR-SIMLOG-V1\nHEADER 0 0 0 0\nWHAT is this\n");
  EXPECT_THROW(ReadSimulationLog(buffer), std::runtime_error);
}

TEST(SimLog, EmptyResultRoundTrips) {
  SimResult empty;
  std::stringstream buffer;
  WriteSimulationLog(buffer, empty);
  const SimResult loaded = ReadSimulationLog(buffer);
  EXPECT_TRUE(loaded.jobs.empty());
  EXPECT_TRUE(loaded.tasks.empty());
}

TEST(Utilization, ComputesBusyFractions) {
  std::vector<SimTaskRecord> tasks;
  // Two map tasks of 10 s each on 2 map slots over a 20 s makespan:
  // utilization = 20 / (2 * 20) = 0.5.
  tasks.push_back({0, SimTaskKind::kMap, 0.0, 0.0, 10.0});
  tasks.push_back({0, SimTaskKind::kMap, 0.0, 0.0, 10.0});
  // One reduce busy 10..20 on 1 reduce slot: utilization 0.5.
  tasks.push_back({0, SimTaskKind::kReduce, 10.0, 15.0, 20.0});
  const auto report = ComputeUtilization(tasks, 2, 1, 20.0);
  EXPECT_NEAR(report.map_utilization, 0.5, 1e-12);
  EXPECT_NEAR(report.reduce_utilization, 0.5, 1e-12);
  EXPECT_NEAR(report.map_busy_slot_seconds, 20.0, 1e-12);
  EXPECT_NEAR(report.reduce_busy_slot_seconds, 10.0, 1e-12);
}

TEST(Utilization, ZeroMakespanGivesZero) {
  const auto report = ComputeUtilization({}, 2, 2, 0.0);
  EXPECT_EQ(report.map_utilization, 0.0);
  EXPECT_EQ(report.reduce_utilization, 0.0);
}

TEST(Utilization, RejectsBadSlotCounts) {
  EXPECT_THROW(ComputeUtilization({}, 0, 1, 1.0), std::invalid_argument);
  EXPECT_THROW(ComputeUtilization({}, 1, -1, 1.0), std::invalid_argument);
}

TEST(Utilization, RealReplayUtilizationIsSane) {
  const SimResult result = SampleResult();
  const auto report = ComputeUtilization(result.tasks, 2, 2, result.makespan);
  EXPECT_GT(report.map_utilization, 0.0);
  EXPECT_LE(report.map_utilization, 1.0 + 1e-9);
  EXPECT_GT(report.reduce_utilization, 0.0);
  EXPECT_LE(report.reduce_utilization, 1.0 + 1e-9);
}

}  // namespace
}  // namespace simmr::core
