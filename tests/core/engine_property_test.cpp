// Randomized property tests for the SimMR engine: invariants that must
// hold for every workload under every policy, checked across a seed sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/simmr.h"
#include "sched/fair.h"
#include "sched/fifo.h"
#include "sched/maxedf.h"
#include "sched/minedf.h"
#include "trace/synthetic_tracegen.h"
#include "trace/workload.h"

namespace simmr::core {
namespace {

constexpr int kMapSlots = 12;
constexpr int kReduceSlots = 6;

trace::WorkloadTrace RandomWorkload(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<trace::JobProfile> pool;
  const int num_profiles = 3 + static_cast<int>(rng.NextBounded(5));
  for (int i = 0; i < num_profiles; ++i) {
    trace::SyntheticJobSpec spec;
    spec.app_name = "fuzz" + std::to_string(i);
    spec.num_maps = 1 + static_cast<int>(rng.NextBounded(40));
    spec.num_reduces = static_cast<int>(rng.NextBounded(16));
    spec.first_wave_size = static_cast<int>(rng.NextBounded(8));
    spec.map_duration =
        std::make_shared<UniformDist>(0.5, 1.0 + rng.NextDouble(0, 30));
    spec.first_shuffle_duration =
        std::make_shared<UniformDist>(0.0, 1.0 + rng.NextDouble(0, 5));
    spec.typical_shuffle_duration =
        std::make_shared<UniformDist>(0.5, 1.0 + rng.NextDouble(0, 10));
    spec.reduce_duration =
        std::make_shared<UniformDist>(0.1, 0.5 + rng.NextDouble(0, 8));
    pool.push_back(trace::SynthesizeProfile(spec, rng));
  }
  std::vector<double> solos(pool.size(), 50.0 + rng.NextDouble(0, 100));
  trace::WorkloadParams params;
  params.num_jobs = 4 + static_cast<int>(rng.NextBounded(12));
  params.mean_interarrival_s = rng.NextDouble(0.0, 40.0);
  params.deadline_factor = 1.0 + rng.NextDouble(0.0, 2.0);
  return trace::MakeWorkload(pool, solos, params, rng);
}

std::unique_ptr<SchedulerPolicy> MakePolicy(std::uint64_t seed) {
  switch (seed % 4) {
    case 0: return std::make_unique<sched::FifoPolicy>();
    case 1: return std::make_unique<sched::MaxEdfPolicy>();
    case 2:
      return std::make_unique<sched::MinEdfPolicy>(kMapSlots, kReduceSlots);
    default: return std::make_unique<sched::FairPolicy>();
  }
}

class EngineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineProperty, InvariantsHoldUnderRandomWorkloads) {
  const std::uint64_t seed = GetParam();
  const trace::WorkloadTrace workload = RandomWorkload(seed);
  const auto policy = MakePolicy(seed);
  SimConfig cfg;
  cfg.map_slots = kMapSlots;
  cfg.reduce_slots = kReduceSlots;
  cfg.min_map_percent_completed = (seed % 3) * 0.45;  // 0, 0.45, 0.9
  cfg.record_tasks = true;
  SimulatorEngine engine(cfg, *policy);
  const SimResult result = engine.Run(workload);

  // 1. Every job completes, after its arrival, with ordered milestones.
  ASSERT_EQ(result.jobs.size(), workload.size());
  double latest = 0.0;
  for (const auto& job : result.jobs) {
    EXPECT_GE(job.first_launch, job.arrival);
    EXPECT_GE(job.completion, job.first_launch);
    if (workload[job.job].profile.num_reduces > 0) {
      EXPECT_GE(job.completion, job.map_stage_end);
    }
    latest = std::max(latest, job.completion);
  }
  // 2. Makespan is the latest completion.
  EXPECT_DOUBLE_EQ(result.makespan, latest);

  // 3. Task counts match the workload; phase boundaries are ordered.
  std::size_t expected_tasks = 0;
  for (const auto& tj : workload) {
    expected_tasks += tj.profile.num_maps + tj.profile.num_reduces;
  }
  ASSERT_EQ(result.tasks.size(), expected_tasks);
  for (const auto& t : result.tasks) {
    EXPECT_LE(t.start, t.shuffle_end);
    EXPECT_LE(t.shuffle_end, t.end);
    EXPECT_TRUE(std::isfinite(t.end));
  }

  // 4. Slot capacity is never exceeded at any instant.
  const auto check_capacity = [&result](SimTaskKind kind, int limit) {
    std::vector<std::pair<double, int>> deltas;
    for (const auto& t : result.tasks) {
      if (t.kind != kind) continue;
      deltas.push_back({t.start, +1});
      deltas.push_back({t.end, -1});
    }
    std::sort(deltas.begin(), deltas.end());
    int running = 0;
    for (const auto& [time, delta] : deltas) {
      running += delta;
      EXPECT_LE(running, limit);
    }
    EXPECT_EQ(running, 0);
  };
  check_capacity(SimTaskKind::kMap, kMapSlots);
  check_capacity(SimTaskKind::kReduce, kReduceSlots);

  // 5. Utilization is a valid fraction.
  const auto util =
      ComputeUtilization(result.tasks, kMapSlots, kReduceSlots,
                         result.makespan);
  EXPECT_GE(util.map_utilization, 0.0);
  EXPECT_LE(util.map_utilization, 1.0 + 1e-9);
  EXPECT_LE(util.reduce_utilization, 1.0 + 1e-9);

  // 6. Replay is deterministic: same inputs, fresh policy, same outcome.
  const auto policy2 = MakePolicy(seed);
  SimulatorEngine engine2(cfg, *policy2);
  const SimResult again = engine2.Run(workload);
  ASSERT_EQ(again.jobs.size(), result.jobs.size());
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(again.jobs[i].completion, result.jobs[i].completion);
  }
  EXPECT_EQ(again.events_processed, result.events_processed);
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, EngineProperty,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace simmr::core
