#include "core/engine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/simmr.h"
#include "sched/fifo.h"

namespace simmr::core {
namespace {

/// Deterministic profile: every map takes 10 s, typical shuffle 5 s, first
/// shuffle (non-overlap) 3 s, reduce 2 s.
trace::JobProfile UniformProfile(int num_maps, int num_reduces,
                                 int first_wave = 0) {
  trace::JobProfile p;
  p.app_name = "uniform";
  p.num_maps = num_maps;
  p.num_reduces = num_reduces;
  p.map_durations.assign(num_maps, 10.0);
  p.first_shuffle_durations.assign(first_wave, 3.0);
  p.typical_shuffle_durations.assign(num_reduces - first_wave, 5.0);
  p.reduce_durations.assign(num_reduces, 2.0);
  return p;
}

trace::WorkloadTrace SingleJob(const trace::JobProfile& profile,
                               double arrival = 0.0, double deadline = 0.0) {
  trace::WorkloadTrace w(1);
  w[0].profile = profile;
  w[0].arrival = arrival;
  w[0].deadline = deadline;
  return w;
}

SimConfig Config(int map_slots, int reduce_slots,
                 double slowstart = 0.05) {
  SimConfig cfg;
  cfg.map_slots = map_slots;
  cfg.reduce_slots = reduce_slots;
  cfg.min_map_percent_completed = slowstart;
  return cfg;
}

TEST(Engine, SingleWaveJobCompletionIsExact) {
  // 4 maps on 4 slots: map stage = 10. One reduce wave of 2 (first wave,
  // overlapping): completion = 10 + 3 + 2 = 15.
  sched::FifoPolicy fifo;
  const auto result =
      Replay(SingleJob(UniformProfile(4, 2, /*first_wave=*/2)), fifo,
             Config(4, 2));
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_NEAR(result.jobs[0].CompletionTime(), 15.0, 1e-9);
  EXPECT_NEAR(result.jobs[0].map_stage_end, 10.0, 1e-9);
}

TEST(Engine, MapWavesSerializeOnLimitedSlots) {
  // 8 maps on 2 slots: 4 waves of 10 s = 40 s map stage.
  sched::FifoPolicy fifo;
  const auto result = Replay(SingleJob(UniformProfile(8, 1, 1)), fifo,
                             Config(2, 1));
  EXPECT_NEAR(result.jobs[0].map_stage_end, 40.0, 1e-9);
  // Completion: 40 + first shuffle 3 + reduce 2.
  EXPECT_NEAR(result.jobs[0].completion, 45.0, 1e-9);
}

TEST(Engine, TypicalWavesUseFullShuffleDuration) {
  // 2 maps serialized on 1 slot (map stage 20); 4 reduces on 2 slots. The
  // first wave launches at t=10 (slowstart crossed) as fillers patched at
  // map-stage end: 20 + 3 + 2 = 25. The second wave is typical: 25 + 5 + 2.
  sched::FifoPolicy fifo;
  const auto result = Replay(SingleJob(UniformProfile(2, 4, 2)), fifo,
                             Config(1, 2));
  EXPECT_NEAR(result.jobs[0].map_stage_end, 20.0, 1e-9);
  EXPECT_NEAR(result.jobs[0].completion, 32.0, 1e-9);
}

TEST(Engine, FillerReduceOccupiesSlotUntilMapStageEnds) {
  // One reduce slot. The first-wave reduce is scheduled early (slowstart
  // 5% of 10 maps = 1 map done at t=10 on 1 map slot) and blocks the slot
  // until the map stage ends at t=100.
  sched::FifoPolicy fifo;
  const auto result = Replay(SingleJob(UniformProfile(10, 2, 1)), fifo,
                             Config(1, 1));
  // Reduce wave 1: 100 + 3 + 2 = 105; wave 2 (typical): 105 + 5 + 2 = 112.
  EXPECT_NEAR(result.jobs[0].completion, 112.0, 1e-9);
}

TEST(Engine, SlowstartGateDelaysReduces) {
  // With min_map_percent = 1.0, no reduce may start before all maps done,
  // so every reduce is "typical".
  sched::FifoPolicy fifo;
  const auto result = Replay(SingleJob(UniformProfile(4, 2, 2)), fifo,
                             Config(4, 2, /*slowstart=*/1.0));
  // Map stage 10; reduces use typical pool — but this profile has only
  // first-wave samples (first_wave=2), so the typical pool falls back to
  // first-shuffle samples: 10 + 3 + 2 = 15.
  EXPECT_NEAR(result.jobs[0].completion, 15.0, 1e-9);
}

TEST(Engine, ZeroSlowstartSchedulesReducesAtArrival) {
  SimConfig cfg = Config(1, 2, /*slowstart=*/0.0);
  cfg.record_tasks = true;
  sched::FifoPolicy fifo;
  SimulatorEngine engine(cfg, fifo);
  const auto result = engine.Run(SingleJob(UniformProfile(4, 2, 2)));
  // Both reduces are fillers started at t=0.
  int early_reduces = 0;
  for (const auto& t : result.tasks) {
    if (t.kind == SimTaskKind::kReduce && t.start == 0.0) ++early_reduces;
  }
  EXPECT_EQ(early_reduces, 2);
}

TEST(Engine, TaskRecordsHavePhaseBoundaries) {
  SimConfig cfg = Config(2, 2);
  cfg.record_tasks = true;
  sched::FifoPolicy fifo;
  SimulatorEngine engine(cfg, fifo);
  const auto result = engine.Run(SingleJob(UniformProfile(4, 2, 2)));
  int maps = 0, reduces = 0;
  for (const auto& t : result.tasks) {
    EXPECT_LE(t.start, t.shuffle_end);
    EXPECT_LE(t.shuffle_end, t.end);
    if (t.kind == SimTaskKind::kMap) {
      ++maps;
      EXPECT_DOUBLE_EQ(t.start, t.shuffle_end);
    } else {
      ++reduces;
      EXPECT_LT(t.shuffle_end, t.end);
    }
  }
  EXPECT_EQ(maps, 4);
  EXPECT_EQ(reduces, 2);
}

TEST(Engine, NoTaskRecordsUnlessRequested) {
  sched::FifoPolicy fifo;
  const auto result =
      Replay(SingleJob(UniformProfile(4, 2, 2)), fifo, Config(2, 2));
  EXPECT_TRUE(result.tasks.empty());
}

TEST(Engine, MultiJobFifoOrdering) {
  trace::WorkloadTrace w(2);
  w[0].profile = UniformProfile(4, 1, 1);
  w[0].arrival = 0.0;
  w[1].profile = UniformProfile(4, 1, 1);
  w[1].arrival = 1.0;
  sched::FifoPolicy fifo;
  const auto result = Replay(w, fifo, Config(2, 1));
  ASSERT_EQ(result.jobs.size(), 2u);
  const auto& first = *std::find_if(result.jobs.begin(), result.jobs.end(),
                                    [](const auto& j) { return j.job == 0; });
  const auto& second = *std::find_if(result.jobs.begin(), result.jobs.end(),
                                     [](const auto& j) { return j.job == 1; });
  EXPECT_LT(first.completion, second.completion);
}

TEST(Engine, SlotConservationProperty) {
  // Replaying with task records, at no instant may more tasks run than
  // slots exist.
  SimConfig cfg = Config(3, 2);
  cfg.record_tasks = true;
  sched::FifoPolicy fifo;
  SimulatorEngine engine(cfg, fifo);
  trace::WorkloadTrace w;
  for (int i = 0; i < 4; ++i) {
    trace::TraceJob tj;
    tj.profile = UniformProfile(6, 4, 2);
    tj.arrival = i * 7.0;
    w.push_back(tj);
  }
  const auto result = engine.Run(w);
  std::vector<std::pair<double, int>> map_deltas, red_deltas;
  for (const auto& t : result.tasks) {
    auto& deltas = t.kind == SimTaskKind::kMap ? map_deltas : red_deltas;
    deltas.push_back({t.start, +1});
    deltas.push_back({t.end, -1});
  }
  const auto check = [](std::vector<std::pair<double, int>>& deltas,
                        int limit) {
    std::sort(deltas.begin(), deltas.end());
    int running = 0;
    for (const auto& [time, delta] : deltas) {
      running += delta;
      EXPECT_LE(running, limit);
    }
  };
  check(map_deltas, 3);
  check(red_deltas, 2);
}

TEST(Engine, EventsProcessedCountsAllSevenKinds) {
  sched::FifoPolicy fifo;
  const auto result =
      Replay(SingleJob(UniformProfile(4, 2, 2)), fifo, Config(2, 2));
  // At least: 1 job arrival + 1 map arrival + 4 map departures + 1 stage
  // done + 1 reduce arrival + 2 reduce departures + 1 job departure.
  EXPECT_GE(result.events_processed, 11u);
}

TEST(Engine, DeterministicReplay) {
  trace::WorkloadTrace w;
  for (int i = 0; i < 5; ++i) {
    trace::TraceJob tj;
    tj.profile = UniformProfile(6 + i, 3, 1);
    tj.arrival = i * 3.0;
    w.push_back(tj);
  }
  sched::FifoPolicy fifo_a, fifo_b;
  const auto a = Replay(w, fifo_a, Config(4, 3));
  const auto b = Replay(w, fifo_b, Config(4, 3));
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].completion, b.jobs[i].completion);
  }
  EXPECT_EQ(a.events_processed, b.events_processed);
}

TEST(Engine, MoreSlotsNeverSlower) {
  // Monotonicity: a single job with more slots completes no later.
  sched::FifoPolicy fifo;
  const trace::JobProfile p = UniformProfile(16, 8, 4);
  double prev = 1e18;
  for (const int slots : {1, 2, 4, 8, 16}) {
    const auto result = Replay(SingleJob(p), fifo, Config(slots, slots));
    EXPECT_LE(result.jobs[0].completion, prev + 1e-9) << slots;
    prev = result.jobs[0].completion;
  }
}

TEST(Engine, MapOnlyJobCompletesAtMapStageEnd) {
  trace::JobProfile p;
  p.app_name = "maponly";
  p.num_maps = 4;
  p.num_reduces = 0;
  p.map_durations.assign(4, 10.0);
  sched::FifoPolicy fifo;
  const auto result = Replay(SingleJob(p), fifo, Config(2, 1));
  EXPECT_NEAR(result.jobs[0].completion, 20.0, 1e-9);
}

TEST(Engine, LateArrivalWaitsForArrivalTime) {
  sched::FifoPolicy fifo;
  const auto result =
      Replay(SingleJob(UniformProfile(2, 1, 1), /*arrival=*/500.0), fifo,
             Config(2, 1));
  EXPECT_GE(result.jobs[0].first_launch, 500.0);
  EXPECT_NEAR(result.jobs[0].CompletionTime(), 15.0, 1e-9);
}

TEST(Engine, DurationPoolWrapsWhenReplayNeedsMoreSamples) {
  // Profile claims 4 maps but supplies only 2 samples: the pool cycles.
  trace::JobProfile p = UniformProfile(4, 1, 1);
  p.map_durations = {10.0, 20.0};
  sched::FifoPolicy fifo;
  const auto result = Replay(SingleJob(p), fifo, Config(1, 1));
  // Serial maps: 10+20+10+20 = 60; + 3 + 2.
  EXPECT_NEAR(result.jobs[0].completion, 65.0, 1e-9);
}

TEST(Engine, RejectsInvalidProfile) {
  trace::JobProfile bad = UniformProfile(2, 1, 1);
  bad.map_durations.clear();
  sched::FifoPolicy fifo;
  EXPECT_THROW(Replay(SingleJob(bad), fifo, Config(1, 1)),
               std::invalid_argument);
}

TEST(Engine, RejectsBadConfig) {
  sched::FifoPolicy fifo;
  EXPECT_THROW(Replay(SingleJob(UniformProfile(2, 1, 1)), fifo, Config(0, 1)),
               std::invalid_argument);
  SimConfig cfg = Config(1, 1);
  cfg.min_map_percent_completed = 1.5;
  EXPECT_THROW(Replay(SingleJob(UniformProfile(2, 1, 1)), fifo, cfg),
               std::invalid_argument);
}

TEST(Engine, EmptyWorkloadIsFine) {
  sched::FifoPolicy fifo;
  const auto result = Replay({}, fifo, Config(1, 1));
  EXPECT_TRUE(result.jobs.empty());
  EXPECT_DOUBLE_EQ(result.makespan, 0.0);
}

TEST(Engine, MakespanIsLatestCompletion) {
  trace::WorkloadTrace w(2);
  w[0].profile = UniformProfile(2, 1, 1);
  w[0].arrival = 0.0;
  w[1].profile = UniformProfile(2, 1, 1);
  w[1].arrival = 100.0;
  sched::FifoPolicy fifo;
  const auto result = Replay(w, fifo, Config(2, 1));
  double latest = 0.0;
  for (const auto& j : result.jobs) latest = std::max(latest, j.completion);
  EXPECT_DOUBLE_EQ(result.makespan, latest);
}

TEST(MeasureSoloCompletions, MatchesDirectReplay) {
  const std::vector<trace::JobProfile> profiles{UniformProfile(8, 2, 2),
                                                UniformProfile(4, 4, 2)};
  const auto solos = MeasureSoloCompletions(profiles, Config(4, 2));
  ASSERT_EQ(solos.size(), 2u);
  sched::FifoPolicy fifo;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto direct = Replay(SingleJob(profiles[i]), fifo, Config(4, 2));
    EXPECT_DOUBLE_EQ(solos[i], direct.jobs[0].CompletionTime());
  }
}

}  // namespace
}  // namespace simmr::core
