#include "fuzz/shrinker.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "trace/job_profile.h"

namespace simmr::fuzz {
namespace {

trace::JobProfile Profile(const std::string& app, int maps, int reduces,
                          double dur = 10.0) {
  trace::JobProfile p;
  p.app_name = app;
  p.dataset = "shrink";
  p.num_maps = maps;
  p.num_reduces = reduces;
  p.map_durations.assign(static_cast<std::size_t>(maps), dur);
  if (reduces > 0) {
    p.first_shuffle_durations.assign(1, dur);
    p.typical_shuffle_durations.assign(static_cast<std::size_t>(reduces - 1),
                                       dur);
    p.reduce_durations.assign(static_cast<std::size_t>(reduces), dur);
  }
  return p;
}

TEST(ShrinkFailure, DropsIrrelevantJobs) {
  // The "failure" only needs the one bad job; everything else must go.
  std::vector<trace::JobProfile> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(Profile("filler", 16, 4));
  pool.insert(pool.begin() + 3, Profile("bad", 16, 4));

  const auto fails = [](const std::vector<trace::JobProfile>& p,
                        const backend::ReplaySpec&) {
    for (const auto& job : p)
      if (job.app_name == "bad") return true;
    return false;
  };
  const ShrinkResult shrunk = ShrinkFailure(pool, backend::ReplaySpec{},
                                            fails);
  ASSERT_EQ(shrunk.pool.size(), 1u);
  EXPECT_EQ(shrunk.pool[0].app_name, "bad");
  EXPECT_TRUE(fails(shrunk.pool, shrunk.spec));
  EXPECT_GT(shrunk.probes, 1u);
}

TEST(ShrinkFailure, HalvesTaskArrays) {
  std::vector<trace::JobProfile> pool{Profile("bad", 48, 12)};
  const auto fails = [](const std::vector<trace::JobProfile>& p,
                        const backend::ReplaySpec&) {
    return !p.empty() && p[0].app_name == "bad";
  };
  const ShrinkResult shrunk = ShrinkFailure(pool, backend::ReplaySpec{},
                                            fails);
  ASSERT_EQ(shrunk.pool.size(), 1u);
  // Task counts shrink to the minimum that still fails (the predicate
  // only cares about the name, so: one map, zero reduces).
  EXPECT_LE(shrunk.pool[0].num_maps, 2);
  EXPECT_LE(shrunk.pool[0].num_reduces, 1);
  EXPECT_EQ(shrunk.pool[0].Validate(), "");
}

TEST(ShrinkFailure, EveryCandidateStaysValid) {
  std::vector<trace::JobProfile> pool{Profile("a", 20, 6),
                                      Profile("b", 32, 8)};
  std::uint64_t invalid = 0;
  const auto fails = [&invalid](const std::vector<trace::JobProfile>& p,
                                const backend::ReplaySpec&) {
    for (const auto& job : p)
      if (!job.Validate().empty()) ++invalid;
    return p.size() >= 2;  // fails while both jobs survive
  };
  const ShrinkResult shrunk = ShrinkFailure(pool, backend::ReplaySpec{},
                                            fails);
  EXPECT_EQ(invalid, 0u);
  EXPECT_EQ(shrunk.pool.size(), 2u);
  for (const auto& job : shrunk.pool) EXPECT_EQ(job.Validate(), "");
}

TEST(ShrinkFailure, SimplifiesTheReplaySpec) {
  std::vector<trace::JobProfile> pool{Profile("bad", 8, 2)};
  backend::ReplaySpec spec;
  spec.num_jobs = 12;
  spec.mean_interarrival_s = 100.0;
  spec.deadline_factor = 3.0;
  const auto fails = [](const std::vector<trace::JobProfile>& p,
                        const backend::ReplaySpec&) {
    return !p.empty() && p[0].app_name == "bad";
  };
  const ShrinkResult shrunk = ShrinkFailure(pool, spec, fails);
  // The failure does not depend on the workload-assembly knobs, so they
  // collapse to their simplest settings.
  EXPECT_EQ(shrunk.spec.num_jobs, 0);
  EXPECT_EQ(shrunk.spec.mean_interarrival_s, 0.0);
  EXPECT_EQ(shrunk.spec.deadline_factor, 0.0);
}

TEST(ShrinkFailure, NonFailingInputReturnsUnchanged) {
  const std::vector<trace::JobProfile> pool{Profile("a", 8, 2),
                                            Profile("b", 4, 1)};
  const auto never = [](const std::vector<trace::JobProfile>&,
                        const backend::ReplaySpec&) { return false; };
  const ShrinkResult shrunk = ShrinkFailure(pool, backend::ReplaySpec{},
                                            never);
  EXPECT_EQ(shrunk.pool.size(), pool.size());
  EXPECT_EQ(shrunk.probes, 1u);
  EXPECT_EQ(shrunk.rounds, 0);
}

TEST(ShrinkFailure, ZeroesDurationsWhenIrrelevant) {
  std::vector<trace::JobProfile> pool{Profile("bad", 4, 2, 37.5)};
  const auto fails = [](const std::vector<trace::JobProfile>& p,
                        const backend::ReplaySpec&) {
    return !p.empty() && p[0].app_name == "bad";
  };
  const ShrinkResult shrunk = ShrinkFailure(pool, backend::ReplaySpec{},
                                            fails);
  ASSERT_FALSE(shrunk.pool.empty());
  for (const double d : shrunk.pool[0].map_durations) EXPECT_EQ(d, 0.0);
}

}  // namespace
}  // namespace simmr::fuzz
