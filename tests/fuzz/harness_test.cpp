#include "fuzz/harness.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "check/invariant_observer.h"
#include "trace/job_profile.h"

namespace simmr::fuzz {
namespace {

std::vector<trace::JobProfile> SmallPool() {
  trace::JobProfile p;
  p.app_name = "battery";
  p.dataset = "unit";
  p.num_maps = 8;
  p.num_reduces = 3;
  p.map_durations.assign(8, 10.0);
  p.first_shuffle_durations.assign(1, 3.0);
  p.typical_shuffle_durations.assign(2, 1.0);
  p.reduce_durations.assign(3, 2.0);
  return {p, p};
}

backend::ReplaySpec SmallSpec() {
  backend::ReplaySpec spec;
  spec.policy = "fifo";
  spec.map_slots = 4;
  spec.reduce_slots = 2;
  spec.seed = 42;
  return spec;
}

TEST(RunCheckBattery, CleanCasePassesEveryLayer) {
  const BatteryResult result = RunCheckBattery(SmallPool(), SmallSpec());
  EXPECT_TRUE(result.ok()) << check::FormatViolations(result.violations);
  EXPECT_GT(result.callbacks_seen, 0u);
}

TEST(RunCheckBattery, IsDeterministic) {
  const BatteryResult a = RunCheckBattery(SmallPool(), SmallSpec());
  const BatteryResult b = RunCheckBattery(SmallPool(), SmallSpec());
  EXPECT_EQ(a.callbacks_seen, b.callbacks_seen);
  EXPECT_EQ(check::FormatViolations(a.violations),
            check::FormatViolations(b.violations));
}

TEST(RunCheckBattery, EveryFaultClassIsCaught) {
  for (const FaultMode mode :
       {FaultMode::kDropCompletion, FaultMode::kDoubleCompletion,
        FaultMode::kClockSkew, FaultMode::kPhantomLaunch}) {
    BatteryOptions options;
    options.fault = {mode, 2};
    // The fault corrupts only the observer stream; the differential and
    // oracle layers would (correctly) see nothing wrong, so the invariant
    // layer alone must convict.
    options.run_differentials = false;
    options.run_thread_differential = false;
    options.run_mumak = false;
    options.run_aria_oracle = false;
    const BatteryResult result =
        RunCheckBattery(SmallPool(), SmallSpec(), options);
    EXPECT_FALSE(result.ok())
        << FaultModeName(mode) << " slipped past the invariant layer";
  }
}

TEST(RunCheckBattery, FaultReportsSurviveFullBattery) {
  BatteryOptions options;
  options.fault = {FaultMode::kDropCompletion, 1};
  const BatteryResult result =
      RunCheckBattery(SmallPool(), SmallSpec(), options);
  EXPECT_FALSE(result.ok());
}

TEST(RunCheckBattery, LayersCanBeDisabledIndependently) {
  BatteryOptions options;
  options.run_differentials = false;
  options.run_thread_differential = false;
  options.run_mumak = false;
  options.run_aria_oracle = false;
  const BatteryResult result =
      RunCheckBattery(SmallPool(), SmallSpec(), options);
  EXPECT_TRUE(result.ok()) << check::FormatViolations(result.violations);
  EXPECT_GT(result.callbacks_seen, 0u);
}

TEST(RunCheckBattery, DeadlineSpecExercisesSoloMeasurement) {
  backend::ReplaySpec spec = SmallSpec();
  spec.deadline_factor = 2.0;
  spec.policy = "maxedf";
  const BatteryResult result = RunCheckBattery(SmallPool(), spec);
  EXPECT_TRUE(result.ok()) << check::FormatViolations(result.violations);
}

TEST(RunCheckBattery, UnknownPolicyThrows) {
  backend::ReplaySpec spec = SmallSpec();
  spec.policy = "round-robin";
  EXPECT_THROW(RunCheckBattery(SmallPool(), spec), std::invalid_argument);
}

TEST(RunCheckBattery, SuppliedObserverIsIgnored) {
  // The battery wires its own observers; a stray one in the spec must not
  // double-report or corrupt the differential baselines.
  check::InvariantObserver stray;
  backend::ReplaySpec spec = SmallSpec();
  spec.observer = &stray;
  const BatteryResult result = RunCheckBattery(SmallPool(), spec);
  EXPECT_TRUE(result.ok()) << check::FormatViolations(result.violations);
}

}  // namespace
}  // namespace simmr::fuzz
