#include "fuzz/repro.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "trace/job_profile.h"

namespace simmr::fuzz {
namespace {

Reproducer SampleReproducer() {
  Reproducer repro;
  repro.master_seed = 0xABCDEF0123456789ULL;
  repro.fault = {FaultMode::kDropCompletion, 7};
  repro.spec.policy = "maxedf";
  repro.spec.map_slots = 13;
  repro.spec.reduce_slots = 5;
  repro.spec.slowstart = 0.05;
  repro.spec.record_tasks = true;
  repro.spec.num_jobs = 4;
  repro.spec.mean_interarrival_s = 10.0;
  repro.spec.arrival_scale = 0.25;
  repro.spec.deadline_factor = 1.5;
  repro.spec.seed = 0x123456789ABCDEF0ULL;
  repro.note = "[slot-conservation] t=3: something leaked";

  trace::JobProfile p;
  p.app_name = "repro";
  p.dataset = "job0";
  p.num_maps = 2;
  p.num_reduces = 2;
  // Awkward doubles: round-tripping them exactly is the whole point.
  p.map_durations = {0.1, 1.0 / 3.0};
  p.first_shuffle_durations = {5.9386992994495396};
  p.typical_shuffle_durations = {0.86704888618407205};
  p.reduce_durations = {2.5081061374475939};
  repro.pool.push_back(p);
  return repro;
}

TEST(Reproducer, RoundTripsBitExactly) {
  const Reproducer original = SampleReproducer();
  std::ostringstream first;
  WriteReproducer(first, original);

  std::istringstream in(first.str());
  const Reproducer read = ReadReproducer(in);
  EXPECT_EQ(read.master_seed, original.master_seed);
  EXPECT_EQ(read.fault.mode, original.fault.mode);
  EXPECT_EQ(read.fault.trigger, original.fault.trigger);
  EXPECT_EQ(read.spec.policy, original.spec.policy);
  EXPECT_EQ(read.spec.map_slots, original.spec.map_slots);
  EXPECT_EQ(read.spec.reduce_slots, original.spec.reduce_slots);
  EXPECT_EQ(read.spec.slowstart, original.spec.slowstart);
  EXPECT_EQ(read.spec.record_tasks, original.spec.record_tasks);
  EXPECT_EQ(read.spec.num_jobs, original.spec.num_jobs);
  EXPECT_EQ(read.spec.mean_interarrival_s,
            original.spec.mean_interarrival_s);
  EXPECT_EQ(read.spec.arrival_scale, original.spec.arrival_scale);
  EXPECT_EQ(read.spec.deadline_factor, original.spec.deadline_factor);
  EXPECT_EQ(read.spec.seed, original.spec.seed);
  EXPECT_EQ(read.note, original.note);
  ASSERT_EQ(read.pool.size(), original.pool.size());
  EXPECT_EQ(read.pool[0], original.pool[0]);  // doubles bit-identical

  // Stability: re-serializing the parsed form reproduces the same bytes.
  std::ostringstream second;
  WriteReproducer(second, read);
  EXPECT_EQ(second.str(), first.str());
}

TEST(Reproducer, FlattensMultilineNotes) {
  Reproducer repro = SampleReproducer();
  repro.note = "line one\nline two";
  std::ostringstream out;
  WriteReproducer(out, repro);
  std::istringstream in(out.str());
  EXPECT_EQ(ReadReproducer(in).note, "line one line two");
}

TEST(Reproducer, EmptyPoolRoundTrips) {
  Reproducer repro = SampleReproducer();
  repro.pool.clear();
  std::ostringstream out;
  WriteReproducer(out, repro);
  std::istringstream in(out.str());
  EXPECT_TRUE(ReadReproducer(in).pool.empty());
}

TEST(Reproducer, RejectsBadVersionLine) {
  std::istringstream in("simmr.repro.v999\nmaster_seed 1\n");
  EXPECT_THROW(ReadReproducer(in), std::runtime_error);
}

TEST(Reproducer, RejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_THROW(ReadReproducer(in), std::runtime_error);
}

TEST(Reproducer, RejectsTruncatedInput) {
  const Reproducer repro = SampleReproducer();
  std::ostringstream out;
  WriteReproducer(out, repro);
  const std::string full = out.str();
  // Cut inside the spec block: a required field goes missing.
  std::istringstream in(full.substr(0, full.size() / 2));
  EXPECT_THROW(ReadReproducer(in), std::runtime_error);
}

TEST(Reproducer, RejectsUnknownFaultMode) {
  std::istringstream in(
      "simmr.repro.v1\nmaster_seed 1\nfault melt-cpu 1\n");
  EXPECT_THROW(ReadReproducer(in), std::runtime_error);
}

TEST(Reproducer, RejectsMisorderedFields) {
  std::istringstream in(
      "simmr.repro.v1\nfault none 1\nmaster_seed 1\n");
  EXPECT_THROW(ReadReproducer(in), std::runtime_error);
}

TEST(Reproducer, FileRoundTripAndMissingFile) {
  const std::string path =
      testing::TempDir() + "/repro_test_case.repro";
  const Reproducer repro = SampleReproducer();
  WriteReproducerFile(path, repro);
  const Reproducer read = ReadReproducerFile(path);
  EXPECT_EQ(read.pool, repro.pool);
  EXPECT_THROW(ReadReproducerFile(path + ".missing"), std::runtime_error);
}

}  // namespace
}  // namespace simmr::fuzz
