#include "fuzz/differential.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "backend/run_result.h"

namespace simmr::fuzz {
namespace {

backend::RunResult SampleResult() {
  backend::RunResult r;
  r.simulator = "simmr";
  r.events_processed = 120;
  r.makespan = 42.5;
  backend::JobOutcome j0;
  j0.job = 0;
  j0.name = "alpha/one";
  j0.submit = 0.0;
  j0.first_launch = 0.0;
  j0.map_stage_end = 20.0;
  j0.finish = 40.0;
  backend::JobOutcome j1 = j0;
  j1.job = 1;
  j1.name = "beta/two";
  j1.submit = 5.0;
  j1.finish = 42.5;
  j1.deadline = 60.0;
  r.jobs = {j0, j1};
  core::SimTaskRecord t;
  t.job = 0;
  t.kind = core::SimTaskKind::kMap;
  t.start = 0.0;
  t.shuffle_end = 0.0;
  t.end = 10.0;
  r.tasks = {t};
  return r;
}

TEST(CompareRunResults, IdenticalResultsAgree) {
  const auto a = SampleResult();
  const auto b = SampleResult();
  EXPECT_TRUE(CompareRunResults(a, b, "same").empty());
}

TEST(CompareRunResults, FlagsMakespanDrift) {
  const auto a = SampleResult();
  auto b = SampleResult();
  b.makespan += 1e-9;  // exact mode: even an ulp-scale drift is a bug
  const auto violations = CompareRunResults(a, b, "drift");
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].invariant, "differential");
  EXPECT_NE(violations[0].detail.find("drift"), std::string::npos);
  EXPECT_NE(violations[0].detail.find("makespan"), std::string::npos);
}

TEST(CompareRunResults, FlagsJobCountMismatchAndStops) {
  const auto a = SampleResult();
  auto b = SampleResult();
  b.jobs.pop_back();
  b.makespan = 0.0;
  const auto violations = CompareRunResults(a, b, "count");
  // Per-job and aggregate comparison is meaningless once the counts
  // differ, so exactly one violation comes back.
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].detail.find("job count"), std::string::npos);
}

TEST(CompareRunResults, FlagsPerJobFinishWithJobId) {
  const auto a = SampleResult();
  auto b = SampleResult();
  b.jobs[1].finish += 0.5;
  const auto violations = CompareRunResults(a, b, "job");
  ASSERT_FALSE(violations.empty());
  EXPECT_TRUE(std::any_of(violations.begin(), violations.end(),
                          [](const check::Violation& v) {
                            return v.job == 1 &&
                                   v.detail.find("finish") !=
                                       std::string::npos;
                          }));
}

TEST(CompareRunResults, ToleranceAbsorbsModelingError) {
  const auto a = SampleResult();
  auto b = SampleResult();
  b.makespan *= 1.04;  // 4% off
  b.jobs[0].finish *= 1.04;
  b.jobs[1].finish *= 1.04;
  CompareOptions options;
  options.rel_tolerance = 0.05;
  options.compare_events = false;
  const auto violations = CompareRunResults(a, b, "tolerant", options);
  EXPECT_TRUE(violations.empty()) << check::FormatViolations(violations);
}

TEST(CompareRunResults, EventCountCheckCanBeDisabled) {
  const auto a = SampleResult();
  auto b = SampleResult();
  b.events_processed += 7;
  EXPECT_FALSE(CompareRunResults(a, b, "ev").empty());
  CompareOptions options;
  options.compare_events = false;
  EXPECT_TRUE(CompareRunResults(a, b, "ev", options).empty());
}

TEST(CompareRunResults, TaskComparisonSkipsWhenOneSideEmpty) {
  const auto a = SampleResult();
  auto b = SampleResult();
  b.tasks.clear();  // record_tasks off on one side: not a divergence
  EXPECT_TRUE(CompareRunResults(a, b, "tasks").empty());
}

TEST(CompareRunResults, FlagsTaskTimingDrift) {
  const auto a = SampleResult();
  auto b = SampleResult();
  b.tasks[0].end += 1.0;
  const auto violations = CompareRunResults(a, b, "tasks");
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].detail.find("task end"), std::string::npos);

  CompareOptions options;
  options.compare_tasks = false;
  EXPECT_TRUE(CompareRunResults(a, b, "tasks", options).empty());
}

TEST(CompareRunResults, StageTimeCheckCanBeDisabled) {
  const auto a = SampleResult();
  auto b = SampleResult();
  b.jobs[0].map_stage_end += 2.0;
  EXPECT_FALSE(CompareRunResults(a, b, "stage").empty());
  CompareOptions options;
  options.compare_stage_times = false;
  EXPECT_TRUE(CompareRunResults(a, b, "stage", options).empty());
}

TEST(CompareRunResults, SharedInfinitiesAgree) {
  // Unknown timestamps (-1) and shared infinities must not trip the
  // tolerance math.
  auto a = SampleResult();
  auto b = SampleResult();
  a.jobs[0].first_launch = -1.0;
  b.jobs[0].first_launch = -1.0;
  EXPECT_TRUE(CompareRunResults(a, b, "inf").empty());
}

// The per-archetype testbed replay gates are load-bearing CI thresholds:
// pin each bound so a loosened table cannot slip through unnoticed.
TEST(TestbedReplayTolerances, PinsEveryArchetypeBound) {
  EXPECT_DOUBLE_EQ(TestbedReplayTolerance("WordCount"), 0.02);
  EXPECT_DOUBLE_EQ(TestbedReplayTolerance("WikiTrends"), 0.02);
  EXPECT_DOUBLE_EQ(TestbedReplayTolerance("Twitter"), 0.02);
  EXPECT_DOUBLE_EQ(TestbedReplayTolerance("Bayes"), 0.02);
  // The shuffle-heavy archetypes carry the largest modeling residual.
  EXPECT_DOUBLE_EQ(TestbedReplayTolerance("Sort"), 0.04);
  EXPECT_DOUBLE_EQ(TestbedReplayTolerance("TFIDF"), 0.05);
}

TEST(TestbedReplayTolerances, UnknownArchetypesFallBackToTheBlanketBound) {
  EXPECT_DOUBLE_EQ(TestbedReplayTolerance("BrandNewApp"), 0.35);
  EXPECT_DOUBLE_EQ(TestbedReplayTolerance(""), 0.35);
}

TEST(TestbedReplayTolerances, EveryBoundIsTighterThanTheOldBlanketGate) {
  const auto& table = TestbedReplayTolerances();
  ASSERT_EQ(table.size(), 6u);  // one entry per validation-suite archetype
  for (const TestbedToleranceEntry& entry : table) {
    EXPECT_GT(entry.rel_tolerance, 0.0) << entry.app;
    EXPECT_LT(entry.rel_tolerance, 0.35) << entry.app;
  }
}

}  // namespace
}  // namespace simmr::fuzz
