#include "fuzz/trace_fuzzer.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "simcore/rng.h"
#include "trace/job_profile.h"

namespace simmr::fuzz {
namespace {

TEST(FuzzProfilePool, EveryDrawValidates) {
  const FuzzConfig config;
  Rng master(7);
  for (int i = 0; i < 200; ++i) {
    Rng rng = master.Split("pool", static_cast<std::uint64_t>(i));
    const auto pool = FuzzProfilePool(config, rng);
    ASSERT_FALSE(pool.empty());
    ASSERT_LE(pool.size(), static_cast<std::size_t>(config.max_jobs));
    for (const auto& p : pool) {
      EXPECT_EQ(p.Validate(), "") << "case " << i << " profile " << p.app_name;
      EXPECT_GE(p.num_maps, 1);
      EXPECT_LE(p.num_maps, config.max_maps);
      EXPECT_LE(p.num_reduces, config.max_reduces);
    }
  }
}

TEST(FuzzProfilePool, RegeneratesBitIdenticallyFromEqualSeeds) {
  const FuzzConfig config;
  for (const std::uint64_t seed : {1ULL, 42ULL, 0xDEADBEEFULL}) {
    Rng a(seed);
    Rng b(seed);
    const auto pool_a = FuzzProfilePool(config, a);
    const auto pool_b = FuzzProfilePool(config, b);
    ASSERT_EQ(pool_a.size(), pool_b.size());
    for (std::size_t i = 0; i < pool_a.size(); ++i)
      EXPECT_EQ(pool_a[i], pool_b[i]) << "seed " << seed << " job " << i;
  }
}

TEST(FuzzProfilePool, BenignModeAvoidsAdversarialCorners) {
  FuzzConfig config;
  config.adversarial = false;
  Rng master(11);
  for (int i = 0; i < 100; ++i) {
    Rng rng = master.Split("benign", static_cast<std::uint64_t>(i));
    for (const auto& p : FuzzProfilePool(config, rng)) {
      for (const double d : p.map_durations) EXPECT_GT(d, 0.0);
      for (const double d : p.reduce_durations) EXPECT_GT(d, 0.0);
    }
  }
}

TEST(FuzzProfilePool, AdversarialModeReachesTheCorners) {
  // Over enough draws the adversarial archetypes must actually appear:
  // map-only jobs, single-task jobs, and zeroed durations. A fuzzer that
  // never leaves the benign region checks nothing extra.
  const FuzzConfig config;
  Rng master(3);
  bool saw_zero_reduce = false;
  bool saw_single_task = false;
  bool saw_zero_duration = false;
  for (int i = 0; i < 300; ++i) {
    Rng rng = master.Split("corners", static_cast<std::uint64_t>(i));
    for (const auto& p : FuzzProfilePool(config, rng)) {
      if (p.num_reduces == 0) saw_zero_reduce = true;
      if (p.num_maps == 1 && p.num_reduces <= 1) saw_single_task = true;
      for (const double d : p.map_durations)
        if (d == 0.0) saw_zero_duration = true;
    }
  }
  EXPECT_TRUE(saw_zero_reduce);
  EXPECT_TRUE(saw_single_task);
  EXPECT_TRUE(saw_zero_duration);
}

TEST(FuzzReplaySpec, DrawsLegalSpecs) {
  const FuzzConfig config;
  const std::set<std::string> policies{"fifo", "maxedf", "minedf", "fair",
                                       "capacity"};
  Rng master(19);
  for (int i = 0; i < 200; ++i) {
    Rng rng = master.Split("spec", static_cast<std::uint64_t>(i));
    const auto spec = FuzzReplaySpec(config, 3, rng);
    EXPECT_TRUE(policies.count(spec.policy)) << spec.policy;
    EXPECT_GE(spec.map_slots, 1);
    EXPECT_LE(spec.map_slots, 64);
    EXPECT_GE(spec.reduce_slots, 1);
    EXPECT_LE(spec.reduce_slots, 64);
    EXPECT_GE(spec.slowstart, 0.0);
    EXPECT_LE(spec.slowstart, 1.0);
    EXPECT_GE(spec.mean_interarrival_s, 0.0);
    EXPECT_EQ(spec.observer, nullptr);
  }
}

TEST(FuzzReplaySpec, RegeneratesBitIdenticallyFromEqualSeeds) {
  const FuzzConfig config;
  Rng a(99);
  Rng b(99);
  const auto spec_a = FuzzReplaySpec(config, 4, a);
  const auto spec_b = FuzzReplaySpec(config, 4, b);
  EXPECT_EQ(spec_a.policy, spec_b.policy);
  EXPECT_EQ(spec_a.map_slots, spec_b.map_slots);
  EXPECT_EQ(spec_a.reduce_slots, spec_b.reduce_slots);
  EXPECT_EQ(spec_a.slowstart, spec_b.slowstart);
  EXPECT_EQ(spec_a.num_jobs, spec_b.num_jobs);
  EXPECT_EQ(spec_a.mean_interarrival_s, spec_b.mean_interarrival_s);
  EXPECT_EQ(spec_a.deadline_factor, spec_b.deadline_factor);
  EXPECT_EQ(spec_a.seed, spec_b.seed);
}

}  // namespace
}  // namespace simmr::fuzz
