#include "sched/aria_model.h"

#include <gtest/gtest.h>

#include "core/simmr.h"
#include "sched/fifo.h"
#include "simcore/rng.h"
#include "trace/synthetic_tracegen.h"

namespace simmr::sched {
namespace {

trace::JobProfile UniformProfile(int num_maps, int num_reduces) {
  trace::JobProfile p;
  p.app_name = "uniform";
  p.num_maps = num_maps;
  p.num_reduces = num_reduces;
  p.map_durations.assign(num_maps, 10.0);
  p.first_shuffle_durations.assign(1, 3.0);
  p.typical_shuffle_durations.assign(
      std::max(0, num_reduces - 1), 5.0);
  p.reduce_durations.assign(num_reduces, 2.0);
  return p;
}

trace::JobProfile NoisyProfile(std::uint64_t seed) {
  Rng rng(seed);
  trace::SyntheticJobSpec spec;
  spec.num_maps = 60;
  spec.num_reduces = 16;
  spec.first_wave_size = 8;
  spec.map_duration = std::make_shared<UniformDist>(8.0, 14.0);
  spec.first_shuffle_duration = std::make_shared<UniformDist>(2.0, 4.0);
  spec.typical_shuffle_duration = std::make_shared<UniformDist>(4.0, 7.0);
  spec.reduce_duration = std::make_shared<UniformDist>(1.0, 3.0);
  return trace::SynthesizeProfile(spec, rng);
}

TEST(ProfileSummaryTest, ExtractsPhaseStatistics) {
  const auto s = ProfileSummary::FromProfile(UniformProfile(10, 4));
  EXPECT_EQ(s.num_maps, 10);
  EXPECT_EQ(s.num_reduces, 4);
  EXPECT_DOUBLE_EQ(s.map_avg, 10.0);
  EXPECT_DOUBLE_EQ(s.map_max, 10.0);
  EXPECT_DOUBLE_EQ(s.first_shuffle_avg, 3.0);
  EXPECT_DOUBLE_EQ(s.typical_shuffle_avg, 5.0);
  EXPECT_DOUBLE_EQ(s.reduce_avg, 2.0);
}

TEST(ProfileSummaryTest, FallsBackAcrossShufflePools) {
  trace::JobProfile p = UniformProfile(4, 2);
  p.typical_shuffle_durations.clear();
  const auto s = ProfileSummary::FromProfile(p);
  EXPECT_DOUBLE_EQ(s.typical_shuffle_avg, 3.0);  // from first pool

  trace::JobProfile q = UniformProfile(4, 2);
  q.first_shuffle_durations.clear();
  const auto s2 = ProfileSummary::FromProfile(q);
  EXPECT_DOUBLE_EQ(s2.first_shuffle_avg, 5.0);  // from typical pool
}

TEST(BoundsTest, LowerNeverExceedsUpper) {
  const auto s = ProfileSummary::FromProfile(NoisyProfile(1));
  for (const int sm : {1, 2, 5, 20, 60}) {
    for (const int sr : {1, 2, 8, 16}) {
      EXPECT_LE(EstimateCompletion(LowerBound(s), sm, sr),
                EstimateCompletion(UpperBound(s), sm, sr) + 1e-9)
          << sm << "x" << sr;
    }
  }
}

TEST(BoundsTest, AverageBoundBetweenBounds) {
  const auto s = ProfileSummary::FromProfile(NoisyProfile(2));
  const double lo = EstimateCompletion(LowerBound(s), 10, 4);
  const double up = EstimateCompletion(UpperBound(s), 10, 4);
  const double avg = EstimateCompletion(AverageBound(s), 10, 4);
  EXPECT_NEAR(avg, 0.5 * (lo + up), 1e-9);
}

TEST(BoundsTest, EstimateDecreasesWithMoreSlots) {
  const auto s = ProfileSummary::FromProfile(NoisyProfile(3));
  const auto coeffs = AverageBound(s);
  double prev = 1e18;
  for (const int slots : {1, 2, 4, 8, 16, 32}) {
    const double t = EstimateCompletion(coeffs, slots, slots);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(BoundsTest, KnownUniformJobLowerBound) {
  // 10 maps of 10 s on 5 slots: map stage lower bound = 10*10/5 = 20.
  // Reduce stage: 4 tasks of (5+2) on 2 slots = 14; first shuffle replaces
  // one typical shuffle: + (3 - 5). Total = 20 + 14 - 2 = 32.
  const auto s = ProfileSummary::FromProfile(UniformProfile(10, 4));
  EXPECT_NEAR(EstimateCompletion(LowerBound(s), 5, 2), 32.0, 1e-9);
}

TEST(BoundsTest, SimulationWithinBounds) {
  // Property: SimMR's replayed makespan lies within [lower, upper] bounds
  // (the paper's motivation for using the average as predictor).
  const trace::JobProfile p = NoisyProfile(4);
  const auto s = ProfileSummary::FromProfile(p);
  sched::FifoPolicy fifo;
  for (const auto& [sm, sr] :
       std::vector<std::pair<int, int>>{{10, 4}, {20, 8}, {60, 16}, {5, 2}}) {
    core::SimConfig cfg;
    cfg.map_slots = sm;
    cfg.reduce_slots = sr;
    trace::WorkloadTrace w(1);
    w[0].profile = p;
    const auto result = core::Replay(w, fifo, cfg);
    const double t = result.jobs[0].CompletionTime();
    // Loose tolerance: the engine's wave quantization can nudge just past
    // the idealized lower bound.
    EXPECT_GE(t, EstimateCompletion(LowerBound(s), sm, sr) * 0.95)
        << sm << "x" << sr;
    EXPECT_LE(t, EstimateCompletion(UpperBound(s), sm, sr) * 1.05)
        << sm << "x" << sr;
  }
}

TEST(MinimalSlots, MeetsDeadlineAccordingToModel) {
  const auto s = ProfileSummary::FromProfile(NoisyProfile(5));
  const auto coeffs = AverageBound(s);
  for (const double deadline : {100.0, 200.0, 400.0, 1000.0}) {
    const auto alloc = MinimalSlotsForDeadline(s, deadline, 64, 64);
    if (alloc.feasible) {
      EXPECT_LE(EstimateCompletion(coeffs, alloc.map_slots,
                                   alloc.reduce_slots),
                deadline + 1e-6)
          << deadline;
    }
  }
}

TEST(MinimalSlots, TighterDeadlineNeedsMoreSlots) {
  const auto s = ProfileSummary::FromProfile(NoisyProfile(6));
  const auto tight = MinimalSlotsForDeadline(s, 120.0, 64, 64);
  const auto loose = MinimalSlotsForDeadline(s, 600.0, 64, 64);
  EXPECT_GE(tight.map_slots + tight.reduce_slots,
            loose.map_slots + loose.reduce_slots);
}

TEST(MinimalSlots, MinimalityOnTheHyperbola) {
  // Property: no allocation with one fewer total slot (distributed any way)
  // still meets the deadline under the model.
  const auto s = ProfileSummary::FromProfile(NoisyProfile(7));
  const auto coeffs = AverageBound(s);
  const double deadline = 250.0;
  const auto alloc = MinimalSlotsForDeadline(s, deadline, 64, 64);
  ASSERT_TRUE(alloc.feasible);
  const int total = alloc.map_slots + alloc.reduce_slots;
  bool any_smaller_feasible = false;
  for (int sm = 1; sm < total - 1; ++sm) {
    const int sr = total - 1 - sm;
    if (sr < 1) continue;
    if (sm > s.num_maps || sr > s.num_reduces) continue;
    if (EstimateCompletion(coeffs, sm, sr) <= deadline) {
      any_smaller_feasible = true;
    }
  }
  EXPECT_FALSE(any_smaller_feasible);
}

TEST(MinimalSlots, InfeasibleDeadlineGrabsCapacity) {
  const auto s = ProfileSummary::FromProfile(NoisyProfile(8));
  // Constant terms alone exceed a 1-second deadline.
  const auto alloc = MinimalSlotsForDeadline(s, 1.0, 64, 32);
  EXPECT_FALSE(alloc.feasible);
  EXPECT_EQ(alloc.map_slots, 64);
  EXPECT_EQ(alloc.reduce_slots, 32);
}

TEST(MinimalSlots, NeverExceedsTaskCounts) {
  const auto s = ProfileSummary::FromProfile(UniformProfile(4, 2));
  const auto alloc = MinimalSlotsForDeadline(s, 15.1, 64, 64);
  EXPECT_LE(alloc.map_slots, 4);
  EXPECT_LE(alloc.reduce_slots, 2);
}

TEST(MinimalSlots, GenerousDeadlineNeedsOneSlotEach) {
  const auto s = ProfileSummary::FromProfile(UniformProfile(4, 2));
  // Serial execution takes ~4*10 + shuffle/reduce ~ 60 s; 1000 s is ample.
  const auto alloc = MinimalSlotsForDeadline(s, 1000.0, 64, 64);
  EXPECT_TRUE(alloc.feasible);
  EXPECT_EQ(alloc.map_slots, 1);
  EXPECT_EQ(alloc.reduce_slots, 1);
}

TEST(MinimalSlots, RejectsBadArguments) {
  const auto s = ProfileSummary::FromProfile(UniformProfile(4, 2));
  EXPECT_THROW(MinimalSlotsForDeadline(s, 0.0, 64, 64),
               std::invalid_argument);
  EXPECT_THROW(MinimalSlotsForDeadline(s, 100.0, 0, 64),
               std::invalid_argument);
}

TEST(EstimateCompletionTest, RejectsNonpositiveSlots) {
  const auto coeffs = AverageBound(ProfileSummary::FromProfile(
      UniformProfile(4, 2)));
  EXPECT_THROW(EstimateCompletion(coeffs, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace simmr::sched
