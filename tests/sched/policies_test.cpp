#include <gtest/gtest.h>

#include <algorithm>

#include "core/simmr.h"
#include "sched/fifo.h"
#include "sched/maxedf.h"
#include "sched/minedf.h"

namespace simmr::sched {
namespace {

trace::JobProfile UniformProfile(int num_maps, int num_reduces) {
  trace::JobProfile p;
  p.app_name = "uniform";
  p.num_maps = num_maps;
  p.num_reduces = num_reduces;
  p.map_durations.assign(num_maps, 10.0);
  p.first_shuffle_durations.assign(1, 3.0);
  if (num_reduces > 1)
    p.typical_shuffle_durations.assign(num_reduces - 1, 5.0);
  p.reduce_durations.assign(num_reduces, 2.0);
  return p;
}

trace::WorkloadTrace TwoJobs(double deadline0, double deadline1) {
  trace::WorkloadTrace w(2);
  w[0].profile = UniformProfile(8, 2);
  w[0].arrival = 0.0;
  w[0].deadline = deadline0;
  w[1].profile = UniformProfile(8, 2);
  w[1].arrival = 0.5;
  w[1].deadline = deadline1;
  return w;
}

double CompletionOf(const core::SimResult& result, core::JobId id) {
  for (const auto& j : result.jobs) {
    if (j.job == id) return j.completion;
  }
  ADD_FAILURE() << "job " << id << " missing";
  return -1.0;
}

TEST(FifoPolicyTest, ServesArrivalsInOrder) {
  core::SimConfig cfg;
  cfg.map_slots = 2;
  cfg.reduce_slots = 2;
  FifoPolicy fifo;
  // Job 1 has the earlier deadline but FIFO ignores deadlines entirely.
  const auto result = core::Replay(TwoJobs(1e6, 10.0), fifo, cfg);
  EXPECT_LT(CompletionOf(result, 0), CompletionOf(result, 1));
}

TEST(MaxEdfPolicyTest, UrgentJobOvertakes) {
  core::SimConfig cfg;
  cfg.map_slots = 2;
  // Four reduce slots so job 0's early non-preemptible filler reduces do
  // not block job 1's reduce stage (the paper's "bump" artifact).
  cfg.reduce_slots = 4;
  MaxEdfPolicy maxedf;
  // Job 1 arrives a hair later but has a much earlier deadline.
  const auto result = core::Replay(TwoJobs(1e6, 50.0), maxedf, cfg);
  EXPECT_LT(CompletionOf(result, 1), CompletionOf(result, 0));
}

TEST(MaxEdfPolicyTest, NoDeadlinesDegradesToArrivalOrder) {
  core::SimConfig cfg;
  cfg.map_slots = 2;
  cfg.reduce_slots = 2;
  MaxEdfPolicy maxedf;
  const auto result = core::Replay(TwoJobs(0.0, 0.0), maxedf, cfg);
  EXPECT_LT(CompletionOf(result, 0), CompletionOf(result, 1));
}

TEST(EdfOrderBeforeTest, OrderingRules) {
  const trace::JobProfile p = UniformProfile(1, 1);
  core::JobState with_deadline(0, p, 0.0, 100.0, 0.0);
  core::JobState later_deadline(1, p, 0.0, 200.0, 0.0);
  core::JobState no_deadline(2, p, 0.0, 0.0, 0.0);
  core::JobState no_deadline_early(3, p, -5.0, 0.0, 0.0);

  EXPECT_TRUE(EdfOrderBefore(with_deadline, later_deadline));
  EXPECT_FALSE(EdfOrderBefore(later_deadline, with_deadline));
  EXPECT_TRUE(EdfOrderBefore(with_deadline, no_deadline));
  EXPECT_TRUE(EdfOrderBefore(later_deadline, no_deadline));
  EXPECT_TRUE(EdfOrderBefore(no_deadline_early, no_deadline));
}

TEST(MinEdfPolicyTest, WantedSlotsComputedAtArrival) {
  core::SimConfig cfg;
  cfg.map_slots = 64;
  cfg.reduce_slots = 64;
  MinEdfPolicy minedf(64, 64);
  trace::WorkloadTrace w(1);
  w[0].profile = UniformProfile(32, 8);
  w[0].arrival = 0.0;
  w[0].deadline = 1e5;  // extremely lax
  const auto result = core::Replay(w, minedf, cfg);
  EXPECT_EQ(result.jobs.size(), 1u);
  // With a lax deadline MinEDF should have used very few slots; the run
  // still completes.
  EXPECT_GT(result.jobs[0].completion, 0.0);
}

TEST(MinEdfPolicyTest, LaxDeadlineUsesFewerSlotsThanMaxEdf) {
  // A single lax-deadline job: MinEDF allocates the minimal slots, so it
  // runs longer than under MaxEDF (which grabs everything).
  core::SimConfig cfg;
  cfg.map_slots = 16;
  cfg.reduce_slots = 16;
  trace::WorkloadTrace w(1);
  w[0].profile = UniformProfile(32, 8);
  w[0].arrival = 0.0;
  w[0].deadline = 2000.0;

  MinEdfPolicy minedf(16, 16);
  MaxEdfPolicy maxedf;
  const double t_min = core::Replay(w, minedf, cfg).jobs[0].completion;
  const double t_max = core::Replay(w, maxedf, cfg).jobs[0].completion;
  EXPECT_GT(t_min, t_max);
  // But MinEDF still meets the deadline.
  EXPECT_LE(t_min, 2000.0);
}

TEST(MinEdfPolicyTest, MeetsDeadlinesItDeemsFeasible) {
  // Sweep deadlines; whenever the ARIA allocation is feasible, the actual
  // replayed completion should meet the deadline (up to model error).
  core::SimConfig cfg;
  cfg.map_slots = 32;
  cfg.reduce_slots = 32;
  for (const double deadline : {120.0, 200.0, 400.0, 900.0}) {
    MinEdfPolicy minedf(32, 32);
    trace::WorkloadTrace w(1);
    w[0].profile = UniformProfile(32, 8);
    w[0].arrival = 0.0;
    w[0].deadline = deadline;
    const auto result = core::Replay(w, minedf, cfg);
    EXPECT_LE(result.jobs[0].completion, deadline * 1.1) << deadline;
  }
}

TEST(MinEdfPolicyTest, SparesResourcesForLaterUrgentJob) {
  // Job 0: lax deadline, big. Job 1 arrives slightly later with a tight
  // deadline. Under MinEDF job 0 holds only its minimal slots, so job 1
  // finishes much sooner than under MaxEDF where job 0 hogged everything
  // (MaxEDF cannot preempt running tasks).
  core::SimConfig cfg;
  cfg.map_slots = 8;
  cfg.reduce_slots = 8;
  trace::WorkloadTrace w(2);
  w[0].profile = UniformProfile(64, 8);
  w[0].arrival = 0.0;
  w[0].deadline = 5000.0;
  w[1].profile = UniformProfile(8, 2);
  w[1].arrival = 1.0;
  w[1].deadline = 80.0;

  MinEdfPolicy minedf(8, 8);
  MaxEdfPolicy maxedf;
  const double t_min = CompletionOf(core::Replay(w, minedf, cfg), 1);
  const double t_max = CompletionOf(core::Replay(w, maxedf, cfg), 1);
  EXPECT_LT(t_min, t_max);
}

TEST(MinEdfPolicyTest, NoDeadlineWantsWholeCluster) {
  MinEdfPolicy minedf(16, 12);
  const trace::JobProfile p = UniformProfile(8, 2);
  core::JobState job(0, p, 0.0, 0.0, 0.0);
  minedf.OnJobArrival(job, 0.0);
  const auto wanted = minedf.WantedSlots(0);
  EXPECT_EQ(wanted.map_slots, 16);
  EXPECT_EQ(wanted.reduce_slots, 12);
}

TEST(MinEdfPolicyTest, PastDeadlineWantsWholeCluster) {
  MinEdfPolicy minedf(16, 12);
  const trace::JobProfile p = UniformProfile(8, 2);
  core::JobState job(0, p, 100.0, 50.0, 0.0);  // deadline already passed
  minedf.OnJobArrival(job, 100.0);
  const auto wanted = minedf.WantedSlots(0);
  EXPECT_EQ(wanted.map_slots, 16);
  EXPECT_FALSE(wanted.feasible);
}

TEST(MinEdfPolicyTest, CompletionErasesBookkeeping) {
  MinEdfPolicy minedf(4, 4);
  const trace::JobProfile p = UniformProfile(2, 1);
  core::JobState job(0, p, 0.0, 1000.0, 0.0);
  minedf.OnJobArrival(job, 0.0);
  EXPECT_NO_THROW(minedf.WantedSlots(0));
  minedf.OnJobCompletion(job, 50.0);
  EXPECT_THROW(minedf.WantedSlots(0), std::out_of_range);
}

TEST(MinEdfPolicyTest, RejectsBadClusterSize) {
  EXPECT_THROW(MinEdfPolicy(0, 4), std::invalid_argument);
  EXPECT_THROW(MinEdfPolicy(4, -1), std::invalid_argument);
}

TEST(PolicyNames, AreDistinct) {
  FifoPolicy fifo;
  MaxEdfPolicy maxedf;
  MinEdfPolicy minedf(1, 1);
  EXPECT_STREQ(fifo.Name(), "FIFO");
  EXPECT_STREQ(maxedf.Name(), "MaxEDF");
  EXPECT_STREQ(minedf.Name(), "MinEDF");
}

}  // namespace
}  // namespace simmr::sched
