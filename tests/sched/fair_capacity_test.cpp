#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/simmr.h"
#include "sched/capacity.h"
#include "sched/fair.h"

namespace simmr::sched {
namespace {

trace::JobProfile UniformProfile(const std::string& app, int num_maps,
                                 int num_reduces) {
  trace::JobProfile p;
  p.app_name = app;
  p.num_maps = num_maps;
  p.num_reduces = num_reduces;
  p.map_durations.assign(num_maps, 10.0);
  p.first_shuffle_durations.assign(1, 3.0);
  if (num_reduces > 1)
    p.typical_shuffle_durations.assign(num_reduces - 1, 5.0);
  p.reduce_durations.assign(num_reduces, 2.0);
  return p;
}

double CompletionOf(const core::SimResult& result, core::JobId id) {
  for (const auto& j : result.jobs) {
    if (j.job == id) return j.completion;
  }
  ADD_FAILURE() << "job " << id << " missing";
  return -1.0;
}

// ---------------------------------------------------------------- Fair ---

TEST(FairPolicyTest, EqualJobsShareTheClusterEqually) {
  // Two identical jobs arriving together: under fair sharing their
  // completion times should be (nearly) equal; under FIFO job 0 would
  // finish its map stage well before job 1 ramps.
  // Both must arrive at the same instant: a job arriving even epsilon
  // earlier legitimately wins a whole first wave (no preemption).
  trace::WorkloadTrace w(2);
  w[0].profile = UniformProfile("a", 32, 4);
  w[1].profile = UniformProfile("b", 32, 4);
  core::SimConfig cfg;
  cfg.map_slots = 8;
  cfg.reduce_slots = 8;
  FairPolicy fair;
  const auto result = core::Replay(w, fair, cfg);
  const double t0 = CompletionOf(result, 0);
  const double t1 = CompletionOf(result, 1);
  EXPECT_NEAR(t0, t1, 0.05 * std::max(t0, t1));
}

TEST(FairPolicyTest, WeightsSkewTheShare) {
  // Job 0 gets weight 3, job 1 weight 1: job 0 should finish much sooner.
  trace::WorkloadTrace w(2);
  w[0].profile = UniformProfile("heavy", 32, 2);
  w[1].profile = UniformProfile("light", 32, 2);
  w[1].arrival = 0.001;
  core::SimConfig cfg;
  cfg.map_slots = 8;
  cfg.reduce_slots = 4;
  FairPolicy fair;
  fair.SetWeight(0, 3.0);
  const auto result = core::Replay(w, fair, cfg);
  EXPECT_LT(CompletionOf(result, 0), CompletionOf(result, 1) * 0.85);
}

TEST(FairPolicyTest, LateArrivalGetsShareImmediately) {
  // A small job arriving mid-way through a big one should not wait for
  // the big job to drain (as it would under FIFO).
  trace::WorkloadTrace w(2);
  w[0].profile = UniformProfile("big", 64, 2);
  w[1].profile = UniformProfile("small", 8, 2);
  w[1].arrival = 50.0;
  core::SimConfig cfg;
  cfg.map_slots = 8;
  cfg.reduce_slots = 8;
  FairPolicy fair;
  const auto fair_result = core::Replay(w, fair, cfg);
  // Under fair share the small job gets ~half the slots on arrival:
  // 8 maps over 4 slots = 2 waves of 10 s + reduce ~ 30 s, well before
  // the big job's ~2x-stretched finish.
  EXPECT_LT(CompletionOf(fair_result, 1) - 50.0, 80.0);
}

TEST(FairPolicyTest, RejectsNonpositiveWeight) {
  FairPolicy fair;
  EXPECT_THROW(fair.SetWeight(0, 0.0), std::invalid_argument);
  EXPECT_THROW(fair.SetWeight(0, -1.0), std::invalid_argument);
}

TEST(FairPolicyTest, SingleJobRunsUnimpeded) {
  trace::WorkloadTrace w(1);
  w[0].profile = UniformProfile("solo", 16, 4);
  core::SimConfig cfg;
  cfg.map_slots = 16;
  cfg.reduce_slots = 4;
  FairPolicy fair;
  const auto result = core::Replay(w, fair, cfg);
  // One map wave (10 s); reduces launch after the map stage, so they use
  // the typical shuffle (5 s) + reduce (2 s).
  EXPECT_NEAR(result.jobs[0].completion, 17.0, 1e-9);
}

// ------------------------------------------------------------ Capacity ---

std::vector<QueueConfig> TwoQueues() {
  return {{"prod", 0.75}, {"adhoc", 0.25}};
}

CapacityPolicy::QueueClassifier ByAppName() {
  return [](const core::JobState& job) { return job.profile().app_name; };
}

TEST(CapacityPolicyTest, JobsLandInTheirQueues) {
  CapacityPolicy policy(8, 8, TwoQueues(), ByAppName());
  const trace::JobProfile prod = UniformProfile("prod", 4, 1);
  const trace::JobProfile adhoc = UniformProfile("adhoc", 4, 1);
  core::JobState j0(0, prod, 0.0, 0.0, 0.0);
  core::JobState j1(1, adhoc, 0.0, 0.0, 0.0);
  policy.OnJobArrival(j0, 0.0);
  policy.OnJobArrival(j1, 0.0);
  EXPECT_EQ(policy.QueueOf(0), "prod");
  EXPECT_EQ(policy.QueueOf(1), "adhoc");
}

TEST(CapacityPolicyTest, UnknownQueueFallsToFirst) {
  CapacityPolicy policy(8, 8, TwoQueues(), ByAppName());
  const trace::JobProfile other = UniformProfile("mystery", 4, 1);
  core::JobState j0(0, other, 0.0, 0.0, 0.0);
  policy.OnJobArrival(j0, 0.0);
  EXPECT_EQ(policy.QueueOf(0), "prod");
}

TEST(CapacityPolicyTest, GuaranteeProtectsSmallQueue) {
  // A big prod job floods the cluster; an adhoc job arriving later must
  // still finish quickly because 25% of slots are its guarantee as prod
  // tasks churn.
  trace::WorkloadTrace w(2);
  w[0].profile = UniformProfile("prod", 128, 4);
  w[1].profile = UniformProfile("adhoc", 8, 2);
  w[1].arrival = 25.0;
  core::SimConfig cfg;
  cfg.map_slots = 16;
  cfg.reduce_slots = 8;
  CapacityPolicy policy(16, 8, TwoQueues(), ByAppName());
  const auto result = core::Replay(w, policy, cfg);
  // 4 guaranteed map slots => 2 waves of 10 s for its 8 maps, plus
  // reduce; far sooner than the prod job's ~80 s map stage end.
  EXPECT_LT(CompletionOf(result, 1), CompletionOf(result, 0));
  EXPECT_LT(CompletionOf(result, 1) - 25.0, 60.0);
}

TEST(CapacityPolicyTest, ElasticityLendsIdleCapacity) {
  // Only the adhoc queue has work: it should receive the whole cluster,
  // not just its 25%.
  trace::WorkloadTrace w(1);
  w[0].profile = UniformProfile("adhoc", 16, 2);
  core::SimConfig cfg;
  cfg.map_slots = 16;
  cfg.reduce_slots = 8;
  CapacityPolicy policy(16, 8, TwoQueues(), ByAppName());
  const auto result = core::Replay(w, policy, cfg);
  // All 16 maps in one wave (10 s) + typical shuffle (5 s) + reduce (2 s):
  // only possible if the queue borrowed beyond its 25% guarantee.
  EXPECT_NEAR(result.jobs[0].completion, 17.0, 1e-9);
}

TEST(CapacityPolicyTest, FifoWithinQueue) {
  trace::WorkloadTrace w(2);
  w[0].profile = UniformProfile("prod", 16, 2);
  w[1].profile = UniformProfile("prod", 16, 2);
  w[1].arrival = 0.001;
  core::SimConfig cfg;
  cfg.map_slots = 8;
  cfg.reduce_slots = 4;
  CapacityPolicy policy(8, 4, TwoQueues(), ByAppName());
  const auto result = core::Replay(w, policy, cfg);
  EXPECT_LT(CompletionOf(result, 0), CompletionOf(result, 1));
}

TEST(CapacityPolicyTest, RejectsBadConfiguration) {
  EXPECT_THROW(CapacityPolicy(0, 8, TwoQueues()), std::invalid_argument);
  EXPECT_THROW(CapacityPolicy(8, 8, {}), std::invalid_argument);
  EXPECT_THROW(CapacityPolicy(8, 8, {{"q", 0.0}}), std::invalid_argument);
  EXPECT_THROW(CapacityPolicy(8, 8, {{"q", 1.5}}), std::invalid_argument);
  EXPECT_THROW(CapacityPolicy(8, 8, {{"q", 0.5}, {"q", 0.5}}),
               std::invalid_argument);
}

TEST(CapacityPolicyTest, QueueOfUnknownJobThrows) {
  CapacityPolicy policy(8, 8, TwoQueues());
  EXPECT_THROW(policy.QueueOf(42), std::out_of_range);
}

TEST(CapacityPolicyTest, WorksWithoutClassifier) {
  trace::WorkloadTrace w(1);
  w[0].profile = UniformProfile("anything", 8, 2);
  core::SimConfig cfg;
  cfg.map_slots = 8;
  cfg.reduce_slots = 4;
  CapacityPolicy policy(8, 4, TwoQueues());  // no classifier: first queue
  const auto result = core::Replay(w, policy, cfg);
  EXPECT_GT(result.jobs[0].completion, 0.0);
}

}  // namespace
}  // namespace simmr::sched
