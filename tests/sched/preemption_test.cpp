#include "sched/preemptive_maxedf.h"

#include <gtest/gtest.h>

#include "core/simmr.h"
#include "sched/maxedf.h"

namespace simmr::sched {
namespace {

trace::JobProfile UniformProfile(int num_maps, int num_reduces) {
  trace::JobProfile p;
  p.app_name = "uniform";
  p.num_maps = num_maps;
  p.num_reduces = num_reduces;
  p.map_durations.assign(num_maps, 10.0);
  p.first_shuffle_durations.assign(1, 3.0);
  if (num_reduces > 1)
    p.typical_shuffle_durations.assign(num_reduces - 1, 5.0);
  p.reduce_durations.assign(num_reduces, 2.0);
  return p;
}

double CompletionOf(const core::SimResult& result, core::JobId id) {
  for (const auto& j : result.jobs) {
    if (j.job == id) return j.completion;
  }
  ADD_FAILURE() << "job " << id << " missing";
  return -1.0;
}

/// Job 0: long map stage, lax deadline, enough reduces to hoard every
/// reduce slot as fillers. Job 1: small urgent job arriving later.
trace::WorkloadTrace HoardingScenario() {
  trace::WorkloadTrace w(2);
  w[0].profile = UniformProfile(64, 4);
  w[0].arrival = 0.0;
  w[0].deadline = 10000.0;
  w[1].profile = UniformProfile(8, 2);
  w[1].arrival = 30.0;
  w[1].deadline = 150.0;
  return w;
}

core::SimConfig Config(bool preemption) {
  core::SimConfig cfg;
  cfg.map_slots = 8;
  cfg.reduce_slots = 4;
  cfg.allow_filler_preemption = preemption;
  return cfg;
}

TEST(PreemptiveMaxEdf, UrgentJobBypassesHoardedReduceSlots) {
  const auto workload = HoardingScenario();
  MaxEdfPolicy plain;
  PreemptiveMaxEdfPolicy preemptive;
  const double without =
      CompletionOf(core::Replay(workload, plain, Config(false)), 1);
  const double with =
      CompletionOf(core::Replay(workload, preemptive, Config(true)), 1);
  // Without preemption job 1's reduces wait for job 0's fillers (held
  // until job 0's ~80 s map stage ends); with preemption they run as soon
  // as job 1's own maps finish.
  EXPECT_LT(with, without - 10.0);
}

TEST(PreemptiveMaxEdf, VictimStillCompletes) {
  const auto workload = HoardingScenario();
  PreemptiveMaxEdfPolicy preemptive;
  const auto result = core::Replay(workload, preemptive, Config(true));
  ASSERT_EQ(result.jobs.size(), 2u);
  for (const auto& j : result.jobs) {
    EXPECT_GT(j.completion, 0.0);
  }
}

TEST(PreemptiveMaxEdf, FlagOffMatchesPlainMaxEdf) {
  // With allow_filler_preemption=false the engine never consults the
  // victim hook, so the preemptive policy degenerates to MaxEDF exactly.
  const auto workload = HoardingScenario();
  MaxEdfPolicy plain;
  PreemptiveMaxEdfPolicy preemptive;
  const auto a = core::Replay(workload, plain, Config(false));
  const auto b = core::Replay(workload, preemptive, Config(false));
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].completion, b.jobs[i].completion);
  }
}

TEST(PreemptiveMaxEdf, NoPreemptionAmongEqualDeadlines) {
  // Two jobs with identical deadlines: EDF strictness forbids preemption,
  // so the run must terminate and match plain MaxEDF.
  trace::WorkloadTrace w(2);
  w[0].profile = UniformProfile(32, 4);
  w[0].arrival = 0.0;
  w[0].deadline = 500.0;
  w[1].profile = UniformProfile(32, 4);
  w[1].arrival = 1.0;
  w[1].deadline = 500.0;
  MaxEdfPolicy plain;
  PreemptiveMaxEdfPolicy preemptive;
  const auto a = core::Replay(w, plain, Config(false));
  const auto b = core::Replay(w, preemptive, Config(true));
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].completion, b.jobs[i].completion);
  }
}

TEST(PreemptiveMaxEdf, SingleJobUnaffected) {
  trace::WorkloadTrace w(1);
  w[0].profile = UniformProfile(16, 4);
  w[0].deadline = 1000.0;
  PreemptiveMaxEdfPolicy preemptive;
  const auto result = core::Replay(w, preemptive, Config(true));
  EXPECT_GT(result.jobs[0].completion, 0.0);
}

TEST(PreemptiveMaxEdf, DefaultPolicyHookDeclines) {
  // Policies that don't override the hook never trigger preemption even
  // when the engine flag is on.
  const auto workload = HoardingScenario();
  MaxEdfPolicy plain_a, plain_b;
  const auto with_flag = core::Replay(workload, plain_a, Config(true));
  const auto without_flag = core::Replay(workload, plain_b, Config(false));
  for (std::size_t i = 0; i < with_flag.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(with_flag.jobs[i].completion,
                     without_flag.jobs[i].completion);
  }
}

}  // namespace
}  // namespace simmr::sched
