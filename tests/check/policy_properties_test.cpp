#include "check/policy_properties.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cluster/cluster_sim.h"

namespace simmr::check {
namespace {

// A tiny noise-free testbed workload, runnable directly under ctest with no
// explorer involved: two identical 2-map jobs contending on a 2-tracker
// cluster. Contention matters — with one map per job every queue split is
// trivially FIFO-equivalent and the capacity fault would have nothing to
// detect.
cluster::TestbedResult RunDeterministicTestbed() {
  cluster::AppModel app;
  app.name = "propdet";
  app.map_cost_s_per_mb = 0.05;
  app.map_startup_s = 1.0;
  app.map_sigma = 0.0;
  app.map_selectivity = 0.15;
  app.merge_cost_s_per_mb = 0.01;
  app.reduce_cost_s_per_mb = 0.05;
  app.reduce_startup_s = 1.0;
  app.reduce_sigma = 0.0;

  cluster::JobSpec spec;
  spec.app = app;
  spec.dataset_label = "prop-128mb";
  spec.input_mb = 128.0;
  spec.num_reduces = 1;

  cluster::TestbedOptions options;
  options.config.num_nodes = 2;
  options.config.num_racks = 1;
  options.config.map_slots_per_node = 1;
  options.config.reduce_slots_per_node = 1;
  options.config.node_speed_sigma = 0.0;
  options.config.task_failure_prob = 0.0;
  options.config.speculative_execution = false;
  options.config.model_locality = false;
  options.seed = 7;
  return cluster::RunTestbed({{spec, 0.0, 0.0}, {spec, 0.0, 0.0}}, options);
}

PropertyOptions Options() {
  PropertyOptions options;
  options.config.map_slots = 2;
  options.config.reduce_slots = 2;
  // Contended micro-jobs on a heartbeat-quantized testbed replay with a
  // large relative error; the mc scenarios use the same bound.
  options.replay_tolerance = 0.75;
  return options;
}

const cluster::HistoryLog& SharedLog() {
  static const cluster::TestbedResult result = RunDeterministicTestbed();
  return result.log;
}

TEST(PolicyProperties, NamesTheThreeProperties) {
  const auto names = PolicyPropertyNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "fifo_capacity_equivalence");
  EXPECT_EQ(names[1], "edf_preemption_dominance");
  EXPECT_EQ(names[2], "replay_accuracy");
}

TEST(PolicyProperties, HealthyTestbedLogPassesEveryProperty) {
  const auto violations = RunPolicyProperties(SharedLog(), {}, Options());
  EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
}

TEST(PolicyProperties, UnknownPropertyNameThrows) {
  EXPECT_THROW(RunPolicyProperties(SharedLog(), {"no_such_property"},
                                   Options()),
               std::invalid_argument);
}

TEST(PolicyProperties, WorkloadDeadlinesFollowTheFactor) {
  PropertyOptions options = Options();
  options.deadline_factor = 1.5;
  const trace::WorkloadTrace workload =
      PropertyWorkloadFromLog(SharedLog(), options);
  ASSERT_EQ(workload.size(), 2u);
  for (const trace::TraceJob& job : workload) {
    EXPECT_GT(job.solo_completion, 0.0);
    EXPECT_DOUBLE_EQ(job.deadline,
                     job.arrival + 1.5 * job.solo_completion);
  }

  options.deadline_factor = 0.0;  // deadline-free workloads stay that way
  for (const trace::TraceJob& job :
       PropertyWorkloadFromLog(SharedLog(), options))
    EXPECT_EQ(job.deadline, 0.0);
}

TEST(PolicyProperties, EmptyWorkloadIsVacuouslyClean) {
  const trace::WorkloadTrace empty;
  EXPECT_TRUE(CheckFifoCapacityEquivalence(empty, Options()).empty());
  EXPECT_TRUE(CheckEdfPreemptionDominance(empty, Options()).empty());
  EXPECT_TRUE(CheckReplayAccuracy(SharedLog(), empty, Options()).empty());
}

// Each seeded fault must trip exactly its own detector: the fault makes a
// healthy log report violations, and every violation carries the right
// property name.
void ExpectFaultTrips(const std::string& fault, const std::string& property) {
  PropertyOptions options = Options();
  options.fault = fault;
  const auto violations =
      RunPolicyProperties(SharedLog(), {property}, options);
  ASSERT_FALSE(violations.empty())
      << "fault '" << fault << "' not detected by " << property;
  for (const Violation& violation : violations)
    EXPECT_EQ(violation.invariant, property);

  // The other two properties stay clean under this fault.
  for (const std::string& other : PolicyPropertyNames()) {
    if (other == property) continue;
    const auto unaffected =
        RunPolicyProperties(SharedLog(), {other}, options);
    EXPECT_TRUE(unaffected.empty())
        << "fault '" << fault << "' leaked into " << other << ":\n"
        << FormatViolations(unaffected);
  }
}

TEST(PolicyProperties, CapacityFaultTripsFifoEquivalence) {
  ExpectFaultTrips("capacity", "fifo_capacity_equivalence");
}

TEST(PolicyProperties, EdfFaultTripsPreemptionDominance) {
  ExpectFaultTrips("edf", "edf_preemption_dominance");
}

TEST(PolicyProperties, ReplayFaultTripsAccuracy) {
  ExpectFaultTrips("replay", "replay_accuracy");
}

}  // namespace
}  // namespace simmr::check
