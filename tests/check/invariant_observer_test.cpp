#include "check/invariant_observer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "cluster/app_model.h"
#include "cluster/cluster_sim.h"
#include "core/simmr.h"
#include "fuzz/fault_injection.h"
#include "mumak/mumak_sim.h"
#include "mumak/rumen.h"
#include "sched/fifo.h"
#include "trace/job_profile.h"
#include "trace/workload.h"

namespace simmr::check {
namespace {

trace::JobProfile SmallProfile() {
  trace::JobProfile p;
  p.app_name = "uniform";
  p.dataset = "unit";
  p.num_maps = 6;
  p.num_reduces = 2;
  p.map_durations.assign(6, 10.0);
  p.first_shuffle_durations.assign(1, 3.0);
  p.typical_shuffle_durations.assign(1, 1.0);
  p.reduce_durations.assign(2, 2.0);
  return p;
}

trace::WorkloadTrace SmallWorkload() {
  trace::WorkloadTrace w(2);
  w[0].profile = SmallProfile();
  w[1].profile = SmallProfile();
  w[1].arrival = 5.0;
  return w;
}

core::SimResult RunEngine(obs::SimObserver* observer, int map_slots = 2,
                          int reduce_slots = 2) {
  core::SimConfig cfg;
  cfg.map_slots = map_slots;
  cfg.reduce_slots = reduce_slots;
  cfg.observer = observer;
  sched::FifoPolicy fifo;
  return core::Replay(SmallWorkload(), fifo, cfg);
}

bool HasInvariant(const std::vector<Violation>& violations,
                  const std::string& id) {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const Violation& v) { return v.invariant == id; });
}

TEST(InvariantObserver, CleanEngineRunHasNoViolations) {
  InvariantOptions options;
  options.map_slots = 2;
  options.reduce_slots = 2;
  InvariantObserver inv(options);
  RunEngine(&inv);
  inv.FinishRun();
  EXPECT_TRUE(inv.ok()) << inv.Report();
  EXPECT_GT(inv.callbacks_seen(), 0u);
}

TEST(InvariantObserver, ResetAllowsReuseAcrossRuns) {
  InvariantOptions options;
  options.map_slots = 2;
  options.reduce_slots = 2;
  InvariantObserver inv(options);
  RunEngine(&inv);
  inv.FinishRun();
  ASSERT_TRUE(inv.ok()) << inv.Report();
  const std::uint64_t first = inv.callbacks_seen();

  inv.Reset();
  EXPECT_EQ(inv.callbacks_seen(), 0u);
  RunEngine(&inv);
  inv.FinishRun();
  EXPECT_TRUE(inv.ok()) << inv.Report();
  EXPECT_EQ(inv.callbacks_seen(), first);
}

TEST(InvariantObserver, DroppedCompletionIsCaught) {
  InvariantOptions options;
  options.map_slots = 2;
  options.reduce_slots = 2;
  InvariantObserver inv(options);
  fuzz::FaultInjectingObserver faulty(
      {fuzz::FaultMode::kDropCompletion, 3}, &inv);
  RunEngine(&faulty);
  inv.FinishRun();
  ASSERT_TRUE(faulty.fired());
  EXPECT_FALSE(inv.ok());
  // The swallowed completion leaves its slot occupied forever.
  EXPECT_TRUE(HasInvariant(inv.violations(), "slot-conservation"))
      << inv.Report();
}

TEST(InvariantObserver, DoubleCompletionIsCaught) {
  InvariantOptions options;
  options.map_slots = 2;
  options.reduce_slots = 2;
  InvariantObserver inv(options);
  fuzz::FaultInjectingObserver faulty(
      {fuzz::FaultMode::kDoubleCompletion, 2}, &inv);
  RunEngine(&faulty);
  inv.FinishRun();
  ASSERT_TRUE(faulty.fired());
  EXPECT_TRUE(HasInvariant(inv.violations(), "task-lifecycle"))
      << inv.Report();
}

TEST(InvariantObserver, ClockSkewOnFirstCallbackIsCaught) {
  // The very first callback has no reference point for the backwards
  // check; the negative-time rule must still flag it (runs start at t=0).
  InvariantObserver inv;
  fuzz::FaultInjectingObserver faulty({fuzz::FaultMode::kClockSkew, 1},
                                      &inv);
  RunEngine(&faulty);
  inv.FinishRun();
  ASSERT_TRUE(faulty.fired());
  EXPECT_TRUE(HasInvariant(inv.violations(), "monotonic-clock"))
      << inv.Report();
}

TEST(InvariantObserver, ClockSkewMidRunIsCaught) {
  InvariantObserver inv;
  fuzz::FaultInjectingObserver faulty({fuzz::FaultMode::kClockSkew, 40},
                                      &inv);
  RunEngine(&faulty);
  inv.FinishRun();
  ASSERT_TRUE(faulty.fired());
  EXPECT_TRUE(HasInvariant(inv.violations(), "monotonic-clock"))
      << inv.Report();
}

TEST(InvariantObserver, PhantomLaunchIsCaught) {
  InvariantOptions options;
  options.map_slots = 2;
  options.reduce_slots = 2;
  InvariantObserver inv(options);
  fuzz::FaultInjectingObserver faulty(
      {fuzz::FaultMode::kPhantomLaunch, 1}, &inv);
  RunEngine(&faulty);
  inv.FinishRun();
  ASSERT_TRUE(faulty.fired());
  EXPECT_FALSE(inv.ok());
  EXPECT_TRUE(HasInvariant(inv.violations(), "task-lifecycle") ||
              HasInvariant(inv.violations(), "slot-conservation"))
      << inv.Report();
}

TEST(InvariantObserver, TestbedRunPassesUnderCausalMode) {
  cluster::JobSpec spec;
  spec.app = cluster::apps::WordCount();
  spec.dataset_label = "unit";
  spec.input_mb = 8 * 64.0;
  spec.num_reduces = 4;
  const std::vector<cluster::SubmittedJob> jobs{{spec, 0.0, 0.0},
                                                {spec, 30.0, 0.0}};
  InvariantOptions options;
  options.strictness = Strictness::kCausal;
  InvariantObserver inv(options);
  cluster::TestbedOptions opts;
  opts.config.num_nodes = 4;
  opts.seed = 7;
  opts.observer = &inv;
  cluster::RunTestbed(jobs, opts);
  inv.FinishRun();
  EXPECT_TRUE(inv.ok()) << inv.Report();
  EXPECT_GT(inv.callbacks_seen(), 0u);
}

TEST(InvariantObserver, MumakRunPassesUnderCausalMode) {
  const std::vector<trace::JobProfile> pool{SmallProfile()};
  const std::vector<SimTime> arrivals{0.0};
  mumak::MumakConfig config;
  InvariantOptions options;
  options.strictness = Strictness::kCausal;
  options.map_slots = config.num_nodes * config.map_slots_per_node;
  options.reduce_slots = config.num_nodes * config.reduce_slots_per_node;
  InvariantObserver inv(options);
  config.observer = &inv;
  mumak::RunMumak(mumak::RumenTrace::FromProfiles(pool, arrivals), config);
  inv.FinishRun();
  EXPECT_TRUE(inv.ok()) << inv.Report();
  EXPECT_GT(inv.callbacks_seen(), 0u);
}

// Targeted micro-tests driving the observer hooks directly: each exercises
// one rule in isolation, with a hand-built callback stream.

TEST(InvariantObserver, FlagsNegativeTime) {
  InvariantObserver inv;
  inv.OnEventDequeue(-1.0, "X", 0);
  EXPECT_TRUE(HasInvariant(inv.violations(), "monotonic-clock"));
}

TEST(InvariantObserver, FlagsBackwardsClock) {
  InvariantObserver inv;
  inv.OnEventDequeue(10.0, "X", 0);
  inv.OnEventDequeue(9.0, "X", 0);
  EXPECT_TRUE(HasInvariant(inv.violations(), "monotonic-clock"));
}

TEST(InvariantObserver, FlagsNaNTime) {
  InvariantObserver inv;
  inv.OnEventDequeue(std::nan(""), "X", 0);
  EXPECT_TRUE(HasInvariant(inv.violations(), "monotonic-clock"));
}

TEST(InvariantObserver, FlagsDoubleArrival) {
  InvariantObserver inv;
  inv.OnJobArrival(0.0, 1, "job", 0.0);
  inv.OnJobArrival(1.0, 1, "job", 0.0);
  EXPECT_TRUE(HasInvariant(inv.violations(), "task-lifecycle"));
}

TEST(InvariantObserver, FlagsLaunchForUnknownJob) {
  InvariantObserver inv;
  inv.OnTaskLaunch(0.0, 9, obs::TaskKind::kMap, 0);
  EXPECT_TRUE(HasInvariant(inv.violations(), "task-lifecycle"));
}

TEST(InvariantObserver, FlagsCompletionWithoutLaunch) {
  InvariantObserver inv;
  inv.OnJobArrival(0.0, 1, "job", 0.0);
  inv.OnTaskCompletion(5.0, 1, obs::TaskKind::kMap, 0, {0.0, 0.0, 5.0},
                       true);
  EXPECT_TRUE(HasInvariant(inv.violations(), "task-lifecycle"));
  EXPECT_TRUE(HasInvariant(inv.violations(), "slot-conservation"));
}

TEST(InvariantObserver, FlagsSlotOversubscription) {
  InvariantOptions options;
  options.map_slots = 1;
  InvariantObserver inv(options);
  inv.OnJobArrival(0.0, 1, "job", 0.0);
  inv.OnTaskLaunch(0.0, 1, obs::TaskKind::kMap, 0);
  inv.OnTaskLaunch(0.0, 1, obs::TaskKind::kMap, 1);
  EXPECT_TRUE(HasInvariant(inv.violations(), "slot-conservation"));
}

TEST(InvariantObserver, FlagsUnpatchedFillerTiming) {
  InvariantObserver inv;
  inv.OnJobArrival(0.0, 1, "job", 0.0);
  inv.OnTaskLaunch(0.0, 1, obs::TaskKind::kReduce, 0);
  // An unpatched filler carries the infinite placeholder duration.
  const double inf = std::numeric_limits<double>::infinity();
  inv.OnTaskCompletion(10.0, 1, obs::TaskKind::kReduce, 0,
                       {0.0, inf, inf}, true);
  EXPECT_TRUE(HasInvariant(inv.violations(), "shuffle-causality"));
}

TEST(InvariantObserver, FlagsFirstWaveShuffleEndingBeforeMapStage) {
  InvariantObserver inv;
  inv.OnJobArrival(0.0, 1, "job", 0.0);
  inv.OnTaskLaunch(0.0, 1, obs::TaskKind::kMap, 0);
  inv.OnTaskLaunch(0.0, 1, obs::TaskKind::kReduce, 0);
  // The reduce launched during the map stage (first wave) but its shuffle
  // "finished" before the map stage did — illegal under the paper's
  // non-overlapping first-shuffle model.
  inv.OnTaskCompletion(8.0, 1, obs::TaskKind::kReduce, 0, {0.0, 4.0, 8.0},
                       true);
  inv.OnTaskCompletion(10.0, 1, obs::TaskKind::kMap, 0, {0.0, 0.0, 10.0},
                       true);
  inv.OnJobCompletion(10.0, 1);
  EXPECT_TRUE(HasInvariant(inv.violations(), "shuffle-causality"))
      << inv.Report();
}

TEST(InvariantObserver, FlagsJobCompletionBeforeLastDeparture) {
  InvariantObserver inv;
  inv.OnJobArrival(0.0, 1, "job", 0.0);
  inv.OnTaskLaunch(0.0, 1, obs::TaskKind::kMap, 0);
  inv.OnTaskCompletion(10.0, 1, obs::TaskKind::kMap, 0, {0.0, 0.0, 10.0},
                       true);
  inv.OnJobCompletion(8.0, 1);  // backwards clock AND bad accounting
  EXPECT_TRUE(HasInvariant(inv.violations(), "job-accounting"));
}

TEST(InvariantObserver, FinishRunFlagsUnfinishedJob) {
  InvariantObserver inv;
  inv.OnJobArrival(0.0, 1, "job", 0.0);
  inv.FinishRun();
  EXPECT_TRUE(HasInvariant(inv.violations(), "job-accounting"));
}

TEST(InvariantObserver, FinishRunFlagsOccupiedSlots) {
  InvariantObserver inv;
  inv.OnJobArrival(0.0, 1, "job", 0.0);
  inv.OnTaskLaunch(0.0, 1, obs::TaskKind::kMap, 0);
  inv.FinishRun();
  EXPECT_TRUE(HasInvariant(inv.violations(), "slot-conservation"));
}

TEST(InvariantObserver, FinishRunIsIdempotent) {
  InvariantObserver inv;
  inv.OnJobArrival(0.0, 1, "job", 0.0);
  inv.FinishRun();
  const std::size_t count = inv.violations().size();
  inv.FinishRun();
  EXPECT_EQ(inv.violations().size(), count);
}

TEST(InvariantObserver, MaxViolationsBoundsTheReport) {
  InvariantOptions options;
  options.max_violations = 3;
  InvariantObserver inv(options);
  for (int i = 0; i < 10; ++i) inv.OnEventDequeue(-1.0, "X", 0);
  EXPECT_EQ(inv.violations().size(), 3u);
}

TEST(InvariantObserver, CausalModeToleratesHeartbeatLag) {
  InvariantOptions options;
  options.strictness = Strictness::kCausal;
  InvariantObserver inv(options);
  inv.OnJobArrival(0.0, 1, "job", 0.0);
  inv.OnTaskLaunch(0.0, 1, obs::TaskKind::kMap, 0);
  // Visible 3 s after the task actually ended (next heartbeat) — legal.
  inv.OnTaskCompletion(13.0, 1, obs::TaskKind::kMap, 0, {0.0, 0.0, 10.0},
                       true);
  inv.OnJobCompletion(16.0, 1);
  inv.FinishRun();
  EXPECT_TRUE(inv.ok()) << inv.Report();
}

TEST(FormatViolations, OnePerLineWithInvariantAndJob) {
  std::vector<Violation> vs;
  vs.push_back({"monotonic-clock", "went backwards", 3.5, -1});
  vs.push_back({"job-accounting", "never completed", 9.0, 4});
  const std::string report = FormatViolations(vs);
  EXPECT_NE(report.find("[monotonic-clock] t=3.5"), std::string::npos);
  EXPECT_NE(report.find("[job-accounting] t=9 job=4"), std::string::npos);
  EXPECT_EQ(std::count(report.begin(), report.end(), '\n'), 2);
}

}  // namespace
}  // namespace simmr::check
