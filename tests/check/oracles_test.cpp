#include "check/oracles.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "trace/job_profile.h"

namespace simmr::check {
namespace {

trace::JobProfile UniformProfile() {
  trace::JobProfile p;
  p.app_name = "uniform";
  p.dataset = "oracle";
  p.num_maps = 32;
  p.num_reduces = 8;
  p.map_durations.assign(32, 10.0);
  p.first_shuffle_durations.assign(2, 3.0);
  p.typical_shuffle_durations.assign(6, 1.0);
  p.reduce_durations.assign(8, 2.0);
  return p;
}

TEST(SoloAriaBounds, UniformProfileFallsWithinBounds) {
  const SoloBoundsResult r = CheckSoloAriaBounds(UniformProfile());
  EXPECT_LE(r.lower, r.upper);
  EXPECT_TRUE(r.within) << r.simulated << " outside [" << r.lower << ", "
                        << r.upper << "]";
  EXPECT_GT(r.simulated, 0.0);
}

TEST(SoloAriaBounds, HoldsAcrossSlotConfigurations) {
  for (const int slots : {1, 4, 16, 64}) {
    SoloBoundsOptions options;
    options.map_slots = slots;
    options.reduce_slots = slots;
    const SoloBoundsResult r = CheckSoloAriaBounds(UniformProfile(), options);
    EXPECT_TRUE(r.within)
        << "at " << slots << "x" << slots << " slots: " << r.simulated
        << " outside [" << r.lower << ", " << r.upper << "]";
  }
}

TEST(SoloAriaBounds, SingleMapSkewProfileStaysAboveLowerBound) {
  // Regression for a fuzzer find (seed 12345, case 43): with a single map
  // the slowstart gate only opens once the map stage is done, so no reduce
  // ever pays the recorded first-wave shuffle. The lower bound must not
  // charge the (large, positive) first-shuffle correction unconditionally.
  trace::JobProfile p;
  p.app_name = "fuzz-skew";
  p.dataset = "regression";
  p.num_maps = 1;
  p.num_reduces = 2;
  p.map_durations = {1.584278534330871};
  p.first_shuffle_durations = {5.9386992994495396};
  p.typical_shuffle_durations = {0.86704888618407205};
  p.reduce_durations = {1.5738384347605978, 2.5081061374475939};

  const SoloBoundsResult r = CheckSoloAriaBounds(p);
  EXPECT_TRUE(r.within) << r.simulated << " outside [" << r.lower << ", "
                        << r.upper << "]";
}

TEST(SoloAriaBounds, MapOnlyJobIsSupported) {
  trace::JobProfile p;
  p.app_name = "map-only";
  p.dataset = "oracle";
  p.num_maps = 8;
  p.num_reduces = 0;
  p.map_durations.assign(8, 5.0);
  const SoloBoundsResult r = CheckSoloAriaBounds(p);
  EXPECT_LE(r.lower, r.upper);
  EXPECT_TRUE(r.within) << r.simulated << " outside [" << r.lower << ", "
                        << r.upper << "]";
}

TEST(SoloAriaBounds, InvalidProfileThrows) {
  trace::JobProfile p;
  p.app_name = "broken";
  p.num_maps = 4;
  p.num_reduces = 0;
  // map_durations left empty: fails JobProfile::Validate().
  EXPECT_THROW(CheckSoloAriaBounds(p), std::invalid_argument);
}

TEST(VerifySoloAriaBounds, CleanPoolProducesNoViolations) {
  const std::vector<trace::JobProfile> pool{UniformProfile(),
                                            UniformProfile()};
  EXPECT_TRUE(VerifySoloAriaBounds(pool).empty());
}

TEST(VerifySoloAriaBounds, ImpossibleToleranceFlagsEveryJob) {
  // Shrink the band to a point the simulation cannot hit: negative
  // relative tolerance narrows [lower, upper] until it excludes the
  // simulated completion, proving the oracle actually fires.
  SoloBoundsOptions options;
  options.rel_tolerance = -0.99;
  options.abs_tolerance = 0.0;
  const std::vector<trace::JobProfile> pool{UniformProfile()};
  const auto violations = VerifySoloAriaBounds(pool, options);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].invariant, "aria-bounds");
  EXPECT_EQ(violations[0].job, 0);
}

}  // namespace
}  // namespace simmr::check
