// Section V's case study, shrunk to test size: MinEDF vs MaxEDF over
// deadline-bearing workloads, judged by the relative-deadline-exceeded
// utility. The paper's qualitative findings are asserted as invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/simmr.h"
#include "sched/maxedf.h"
#include "sched/minedf.h"
#include "trace/synthetic_tracegen.h"
#include "trace/workload.h"

namespace simmr {
namespace {

constexpr int kMapSlots = 32;
constexpr int kReduceSlots = 32;

core::SimConfig Config() {
  core::SimConfig cfg;
  cfg.map_slots = kMapSlots;
  cfg.reduce_slots = kReduceSlots;
  return cfg;
}

std::vector<trace::JobProfile> ProfilePool(Rng& rng) {
  // Paper-like shapes: reduce counts at or above the cluster's reduce-slot
  // total, so MaxEDF's early filler reduces hoard slots for the length of
  // a job's map stage — the contention MinEDF's minimal allocations avoid.
  std::vector<trace::JobProfile> pool;
  for (int i = 0; i < 6; ++i) {
    trace::SyntheticJobSpec spec;
    spec.app_name = "app" + std::to_string(i);
    spec.num_maps = 80 + 40 * i;
    spec.num_reduces = 40 + 8 * i;
    spec.first_wave_size = 16;
    spec.map_duration = std::make_shared<UniformDist>(5.0, 15.0);
    spec.first_shuffle_duration = std::make_shared<UniformDist>(1.0, 3.0);
    spec.typical_shuffle_duration = std::make_shared<UniformDist>(3.0, 7.0);
    spec.reduce_duration = std::make_shared<UniformDist>(1.0, 4.0);
    pool.push_back(trace::SynthesizeProfile(spec, rng));
  }
  return pool;
}

double RunUtility(const trace::WorkloadTrace& workload, bool use_min) {
  if (use_min) {
    sched::MinEdfPolicy policy(kMapSlots, kReduceSlots);
    return core::RelativeDeadlineExceeded(
        core::Replay(workload, policy, Config()).jobs);
  }
  sched::MaxEdfPolicy policy;
  return core::RelativeDeadlineExceeded(
      core::Replay(workload, policy, Config()).jobs);
}

/// Average utility over several seeds (the paper averages 400 runs; a
/// handful suffices for a directional test).
std::pair<double, double> AverageUtilities(double mean_interarrival,
                                           double deadline_factor,
                                           int runs = 8) {
  double min_total = 0.0, max_total = 0.0;
  for (int seed = 0; seed < runs; ++seed) {
    Rng rng(1000 + seed);
    const auto pool = ProfilePool(rng);
    const auto solos = core::MeasureSoloCompletions(pool, Config());
    trace::WorkloadParams params;
    params.num_jobs = 18;
    params.mean_interarrival_s = mean_interarrival;
    params.deadline_factor = deadline_factor;
    const auto workload = trace::MakeWorkload(pool, solos, params, rng);
    min_total += RunUtility(workload, /*use_min=*/true);
    max_total += RunUtility(workload, /*use_min=*/false);
  }
  return {min_total / runs, max_total / runs};
}

TEST(SchedulerCaseStudy, DeadlineFactorOnePoliciesCoincide) {
  // df = 1: MinEDF's model wants (nearly) everything, so the policies
  // behave (nearly) identically. Allow small slack for rounding in the
  // Lagrange allocation.
  const auto [min_u, max_u] = AverageUtilities(50.0, 1.0, 4);
  EXPECT_NEAR(min_u, max_u, 0.15 * std::max(1.0, max_u));
}

TEST(SchedulerCaseStudy, RelaxedDeadlinesFavorMinEdf) {
  // df = 3 under contention: MinEDF shares the cluster and misses far
  // fewer deadlines. At light load both policies trivially meet
  // everything, so the gap only shows here.
  const auto [min_u, max_u] = AverageUtilities(5.0, 3.0, 6);
  EXPECT_LT(min_u, max_u);
}

TEST(SchedulerCaseStudy, ModeratelyRelaxedDeadlinesAlsoFavorMinEdf) {
  // df = 1.5 (Figure 7(b)'s setting) under contention.
  const auto [min_u, max_u] = AverageUtilities(5.0, 1.5, 6);
  EXPECT_LT(min_u, max_u);
}

TEST(SchedulerCaseStudy, UtilityDecreasesWithSparserArrivals) {
  // Both policies improve as the cluster empties out.
  const auto [min_busy, max_busy] = AverageUtilities(5.0, 1.5, 4);
  const auto [min_idle, max_idle] = AverageUtilities(5000.0, 1.5, 4);
  EXPECT_LT(min_idle, min_busy);
  EXPECT_LT(max_idle, max_busy);
}

TEST(SchedulerCaseStudy, VerySparseArrivalsMeetAllDeadlines) {
  // With effectively serial arrivals and df > 1, every job gets the full
  // cluster in time; utility collapses to ~0 under both policies.
  const auto [min_u, max_u] = AverageUtilities(1e6, 2.0, 3);
  EXPECT_NEAR(min_u, 0.0, 1e-9);
  EXPECT_NEAR(max_u, 0.0, 1e-9);
}

TEST(SchedulerCaseStudy, FacebookWorkloadMinEdfWins) {
  // Section V-C shape on the synthetic Facebook workload.
  double min_total = 0.0, max_total = 0.0;
  for (int seed = 0; seed < 6; ++seed) {
    Rng rng(7000 + seed);
    trace::FacebookWorkloadModel model;
    auto pool = trace::SynthesizeFacebookWorkload(model, 30, rng);
    const auto solos = core::MeasureSoloCompletions(pool, Config());
    trace::WorkloadParams params;
    params.num_jobs = 30;
    params.mean_interarrival_s = 20.0;
    params.deadline_factor = 1.5;
    const auto workload = trace::MakeWorkload(pool, solos, params, rng);
    min_total += RunUtility(workload, true);
    max_total += RunUtility(workload, false);
  }
  EXPECT_LE(min_total, max_total);
}

TEST(SchedulerCaseStudy, UtilityIsNonnegativeAndFiniteEverywhere) {
  for (const double df : {1.0, 1.5, 3.0}) {
    for (const double gap : {1.0, 100.0, 10000.0}) {
      const auto [min_u, max_u] = AverageUtilities(gap, df, 2);
      EXPECT_GE(min_u, 0.0);
      EXPECT_GE(max_u, 0.0);
      EXPECT_TRUE(std::isfinite(min_u));
      EXPECT_TRUE(std::isfinite(max_u));
    }
  }
}

}  // namespace
}  // namespace simmr
