// Comparative accuracy tests (the Section IV claims, scaled down): SimMR
// replays a testbed trace within a few percent; the Mumak baseline, which
// omits the shuffle phase, underestimates badly on shuffle-heavy jobs.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster_sim.h"
#include "core/simmr.h"
#include "mumak/mumak_sim.h"
#include "sched/fifo.h"
#include "trace/mr_profiler.h"

namespace simmr {
namespace {

struct AccuracyRow {
  std::string app;
  double actual = 0.0;
  double simmr = 0.0;
  double mumak = 0.0;
  double SimmrError() const { return (simmr - actual) / actual; }
  double MumakError() const { return (mumak - actual) / actual; }
};

class AccuracyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rows_ = new std::vector<AccuracyRow>();
    // Two shuffle-heavy apps (Sort, TFIDF) and one map-heavy (WordCount),
    // each run alone on a 16-node testbed.
    const auto suite = cluster::ValidationSuite();
    for (const int idx : {0, 3, 4}) {  // WordCount, Sort, TFIDF
      std::vector<cluster::SubmittedJob> jobs{{suite[idx], 0.0, 0.0}};
      cluster::TestbedOptions opts;
      opts.config.num_nodes = 16;
      opts.seed = 99;
      const auto testbed = cluster::RunTestbed(jobs, opts);
      const auto& job_record = testbed.log.jobs()[0];

      AccuracyRow row;
      row.app = job_record.app_name;
      row.actual = job_record.finish_time - job_record.submit_time;

      // SimMR replay.
      const auto profiles = trace::BuildAllProfiles(testbed.log);
      core::SimConfig cfg;
      cfg.map_slots = 16;
      cfg.reduce_slots = 16;
      sched::FifoPolicy fifo;
      trace::WorkloadTrace w(1);
      w[0].profile = profiles[0];
      row.simmr = core::Replay(w, fifo, cfg).jobs[0].CompletionTime();

      // Mumak replay of the Rumen conversion of the same log.
      const auto rumen = mumak::RumenTrace::FromHistory(testbed.log);
      mumak::MumakConfig mcfg;
      mcfg.num_nodes = 16;
      row.mumak = mumak::RunMumak(rumen, mcfg).jobs[0].CompletionTime();

      rows_->push_back(row);
    }
  }
  static void TearDownTestSuite() {
    delete rows_;
    rows_ = nullptr;
  }
  static std::vector<AccuracyRow>* rows_;
};

std::vector<AccuracyRow>* AccuracyTest::rows_ = nullptr;

TEST_F(AccuracyTest, SimmrWithinFivePercentEverywhere) {
  for (const auto& row : *rows_) {
    EXPECT_LT(std::fabs(row.SimmrError()), 0.05) << row.app;
  }
}

TEST_F(AccuracyTest, MumakUnderestimatesEverywhere) {
  for (const auto& row : *rows_) {
    EXPECT_LT(row.MumakError(), 0.0) << row.app;
  }
}

TEST_F(AccuracyTest, MumakErrorLargeOnShuffleHeavyApps) {
  for (const auto& row : *rows_) {
    if (row.app == "Sort" || row.app == "TFIDF") {
      EXPECT_LT(row.MumakError(), -0.20) << row.app;
    }
  }
}

TEST_F(AccuracyTest, SimmrBeatsMumakOnEveryApp) {
  for (const auto& row : *rows_) {
    EXPECT_LT(std::fabs(row.SimmrError()), std::fabs(row.MumakError()))
        << row.app;
  }
}

TEST_F(AccuracyTest, SimmrVastlyFasterThanMumakPerEvent) {
  // Not a wall-clock benchmark (that is bench_fig6), but the structural
  // claim behind it: for the same job, Mumak processes far more events
  // because it simulates TaskTrackers and heartbeats.
  const auto suite = cluster::ValidationSuite();
  std::vector<cluster::SubmittedJob> jobs{{suite[3], 0.0, 0.0}};
  cluster::TestbedOptions opts;
  opts.config.num_nodes = 16;
  const auto testbed = cluster::RunTestbed(jobs, opts);

  const auto profiles = trace::BuildAllProfiles(testbed.log);
  core::SimConfig cfg;
  cfg.map_slots = 16;
  cfg.reduce_slots = 16;
  sched::FifoPolicy fifo;
  trace::WorkloadTrace w(1);
  w[0].profile = profiles[0];
  const auto sim = core::Replay(w, fifo, cfg);

  mumak::MumakConfig mcfg;
  mcfg.num_nodes = 16;
  const auto mres =
      mumak::RunMumak(mumak::RumenTrace::FromHistory(testbed.log), mcfg);

  EXPECT_GT(mres.events_processed, 2 * sim.events_processed);
}

}  // namespace
}  // namespace simmr
