// Live observability end to end: an embedded MetricsHttpServer (port 0 —
// the OS picks a free port) serving a registry that a multi-session
// replay loop is concurrently filling, the way simmr_sweep wires
// --serve-metrics. Asserts /metrics is valid Prometheus text and that
// /progress session counts advance as the "sweep" proceeds.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <mutex>
#include <sstream>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/simmr.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/metrics_observer.h"
#include "obs/timeseries.h"
#include "sched/fifo.h"

namespace simmr {
namespace {

std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: test\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    response.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  const auto at = response.find("\r\n\r\n");
  return at == std::string::npos ? "" : response.substr(at + 4);
}

std::uint64_t JsonCount(const std::string& json, const std::string& key) {
  const auto at = json.find("\"" + key + "\":");
  if (at == std::string::npos) return 0;
  return std::strtoull(json.c_str() + json.find(':', at) + 1, nullptr, 10);
}

/// Minimal Prometheus-text validation: every sample line's metric family
/// is declared by a preceding # TYPE line (histogram samples may suffix
/// _bucket/_sum/_count), and the text ends with a newline.
void ExpectValidPrometheusText(const std::string& text) {
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  std::istringstream in(text);
  std::string line;
  std::vector<std::string> families;
  int samples = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string family, type;
      fields >> family >> type;
      EXPECT_TRUE(type == "counter" || type == "gauge" ||
                  type == "histogram")
          << line;
      families.push_back(family);
      continue;
    }
    if (line.rfind("#", 0) == 0) continue;  // HELP
    const std::string name = line.substr(0, line.find_first_of("{ "));
    bool declared = false;
    for (const std::string& family : families)
      if (name == family || name == family + "_bucket" ||
          name == family + "_sum" || name == family + "_count")
        declared = true;
    EXPECT_TRUE(declared) << "sample '" << line << "' has no # TYPE line";
    ++samples;
  }
  EXPECT_GT(samples, 0);
}

trace::WorkloadTrace OneJobWorkload() {
  trace::JobProfile p;
  p.app_name = "uniform";
  p.num_maps = 4;
  p.num_reduces = 2;
  p.map_durations.assign(4, 10.0);
  p.first_shuffle_durations.assign(2, 3.0);
  p.reduce_durations.assign(2, 2.0);
  trace::WorkloadTrace w(1);
  w[0].profile = p;
  return w;
}

TEST(LiveMetricsIntegration, SweepServesMetricsAndAdvancingProgress) {
  // The simmr_sweep wiring, in miniature: one registry observed under a
  // lock, an HTTP server reading it from its own thread, and a loop of
  // replay sessions updating the shared progress counters.
  obs::MetricsRegistry registry;
  obs::MetricsObserver metrics(registry);
  std::mutex registry_mu;
  std::atomic<std::uint64_t> events{0};
  obs::LockingObserver locked(&metrics, &registry_mu, &events);

  std::atomic<std::uint64_t> sessions_completed{0};
  const std::uint64_t sessions_total = 3;

  obs::MetricsHttpServer server(
      [&] {
        std::lock_guard<std::mutex> hold(registry_mu);
        return registry.PrometheusText();
      },
      [&] {
        obs::LiveProgress p;
        p.sessions_completed = sessions_completed.load();
        p.sessions_total = sessions_total;
        p.events_processed = events.load();
        return p;
      });
  // Port 0: the OS picks a free port, Start() reports it.
  const int port = server.Start();
  ASSERT_GT(port, 0);

  std::uint64_t last_seen = 0;
  for (std::uint64_t i = 0; i < sessions_total; ++i) {
    core::SimConfig cfg;
    cfg.map_slots = 2;
    cfg.reduce_slots = 2;
    cfg.observer = &locked;
    sched::FifoPolicy fifo;
    const auto result = core::Replay(OneJobWorkload(), fifo, cfg);
    ASSERT_EQ(result.jobs.size(), 1u);
    sessions_completed.fetch_add(1);

    // Poll /progress mid-sweep: the session count advances while the
    // server is live.
    const std::string progress = Body(HttpGet(port, "/progress"));
    EXPECT_NE(progress.find("\"schema\":\"simmr.progress.v1\""),
              std::string::npos);
    const std::uint64_t seen = JsonCount(progress, "sessions_completed");
    EXPECT_EQ(seen, i + 1);
    EXPECT_GT(seen, last_seen);
    last_seen = seen;
    EXPECT_EQ(JsonCount(progress, "sessions_total"), sessions_total);
    EXPECT_GT(JsonCount(progress, "events_processed"), 0u);
  }

  // /metrics mid-flight: valid Prometheus text with live counters.
  const std::string metrics_response = HttpGet(port, "/metrics");
  EXPECT_NE(metrics_response.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics_response.find("text/plain; version=0.0.4"),
            std::string::npos);
  ExpectValidPrometheusText(Body(metrics_response));
  EXPECT_NE(Body(metrics_response).find("simmr_jobs_completed_total 3"),
            std::string::npos);

  server.Stop();
  EXPECT_GE(server.requests_served(), sessions_total + 1);
}

TEST(LiveMetricsIntegration, TimeSeriesSamplerRidesTheSameLock) {
  // The sampler shares the multicast with the metrics observer in the
  // sinks; here it rides the same LockingObserver to confirm the pieces
  // compose and windows come out of a real replay.
  obs::MetricsRegistry registry;
  obs::MetricsObserver metrics(registry);
  obs::MulticastObserver multicast;
  obs::TimeSeriesSampler::Options opt;
  opt.window_s = 10.0;
  opt.map_slots = 2;
  opt.reduce_slots = 2;
  opt.registry = &registry;
  obs::TimeSeriesSampler sampler(opt);
  multicast.Add(&sampler);
  multicast.Add(&metrics);
  std::mutex mu;
  std::atomic<std::uint64_t> events{0};
  obs::LockingObserver locked(&multicast, &mu, &events);

  core::SimConfig cfg;
  cfg.map_slots = 2;
  cfg.reduce_slots = 2;
  cfg.observer = &locked;
  sched::FifoPolicy fifo;
  core::Replay(OneJobWorkload(), fifo, cfg);
  sampler.Finish();
  EXPECT_GT(sampler.window_count(), 0u);
  EXPECT_EQ(events.load(), sampler.events_seen());
}

}  // namespace
}  // namespace simmr
