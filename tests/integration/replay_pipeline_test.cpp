// End-to-end pipeline tests: testbed execution -> history log (through a
// file) -> MRProfiler -> TraceDatabase (through a directory) -> SimMR
// replay. This is Figure 4's whole data path.
#include <gtest/gtest.h>

#include <filesystem>

#include "cluster/cluster_sim.h"
#include "core/simmr.h"
#include "sched/fifo.h"
#include "trace/mr_profiler.h"
#include "trace/trace_database.h"

namespace simmr {
namespace {

namespace fs = std::filesystem;

class ReplayPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // One testbed run shared by all tests in this suite (it is the slow
    // part). A modest 16-node cluster keeps it quick.
    cluster::JobSpec spec = cluster::ValidationSuite()[3];  // Sort
    std::vector<cluster::SubmittedJob> jobs{{spec, 0.0, 0.0}};
    cluster::TestbedOptions opts;
    opts.config.num_nodes = 16;
    opts.seed = 123;
    result_ = new cluster::TestbedResult(cluster::RunTestbed(jobs, opts));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static cluster::TestbedResult* result_;
};

cluster::TestbedResult* ReplayPipelineTest::result_ = nullptr;

TEST_F(ReplayPipelineTest, LogSurvivesFileRoundTrip) {
  const fs::path path = fs::temp_directory_path() / "simmr_pipeline.log";
  result_->log.WriteFile(path.string());
  const cluster::HistoryLog loaded = cluster::HistoryLog::ReadFile(path.string());
  EXPECT_EQ(loaded.jobs().size(), result_->log.jobs().size());
  EXPECT_EQ(loaded.tasks().size(), result_->log.tasks().size());
  fs::remove(path);
}

TEST_F(ReplayPipelineTest, ProfilerOutputStoresAndReloads) {
  const fs::path dir = fs::temp_directory_path() / "simmr_pipeline_db";
  fs::remove_all(dir);
  trace::TraceDatabase db;
  for (auto& profile : trace::BuildAllProfiles(result_->log)) {
    db.Put(std::move(profile));
  }
  db.Save(dir.string());
  const trace::TraceDatabase loaded = trace::TraceDatabase::Load(dir.string());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.Get(0).app_name, "Sort");
  fs::remove_all(dir);
}

TEST_F(ReplayPipelineTest, ReplayedCompletionWithinFivePercent) {
  // The paper's headline accuracy claim: replaying the collected trace
  // reproduces the original completion time within a few percent.
  const auto profiles = trace::BuildAllProfiles(result_->log);
  ASSERT_EQ(profiles.size(), 1u);

  core::SimConfig cfg;
  cfg.map_slots = 16;  // match the testbed run
  cfg.reduce_slots = 16;
  sched::FifoPolicy fifo;
  trace::WorkloadTrace w(1);
  w[0].profile = profiles[0];
  const auto sim = core::Replay(w, fifo, cfg);

  const auto& job = result_->log.jobs()[0];
  const double actual = job.finish_time - job.submit_time;
  const double simulated = sim.jobs[0].CompletionTime();
  EXPECT_NEAR(simulated, actual, actual * 0.05)
      << "actual=" << actual << " simulated=" << simulated;
}

TEST_F(ReplayPipelineTest, ReplayedMapStageMatches) {
  const auto profiles = trace::BuildAllProfiles(result_->log);
  core::SimConfig cfg;
  cfg.map_slots = 16;
  cfg.reduce_slots = 16;
  sched::FifoPolicy fifo;
  trace::WorkloadTrace w(1);
  w[0].profile = profiles[0];
  const auto sim = core::Replay(w, fifo, cfg);

  const auto& job = result_->log.jobs()[0];
  const double actual_map_stage = job.maps_done_time - job.submit_time;
  EXPECT_NEAR(sim.jobs[0].map_stage_end - sim.jobs[0].arrival,
              actual_map_stage, actual_map_stage * 0.05);
}

TEST_F(ReplayPipelineTest, ReplayUnderDifferentAllocationIsSane) {
  // Replaying the same trace with half the reduce slots must not be faster
  // and must still complete.
  const auto profiles = trace::BuildAllProfiles(result_->log);
  sched::FifoPolicy fifo;
  trace::WorkloadTrace w(1);
  w[0].profile = profiles[0];

  core::SimConfig full;
  full.map_slots = 16;
  full.reduce_slots = 16;
  core::SimConfig half;
  half.map_slots = 8;
  half.reduce_slots = 8;
  const double t_full = core::Replay(w, fifo, full).jobs[0].CompletionTime();
  const double t_half = core::Replay(w, fifo, half).jobs[0].CompletionTime();
  EXPECT_GT(t_half, t_full);
}

}  // namespace
}  // namespace simmr
