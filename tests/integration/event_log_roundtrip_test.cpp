// Lossless event-log round trip, end to end through a file: the engine's
// own SimResult must be reconstructible bit for bit from a written
// "simmr.eventlog.v1" log — the property simmr_analyze depends on.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "analysis/run_diff.h"
#include "analysis/run_record.h"
#include "cluster/app_model.h"
#include "cluster/cluster_sim.h"
#include "core/simmr.h"
#include "obs/event_log.h"
#include "sched/fifo.h"
#include "sched/minedf.h"
#include "trace/synthetic_tracegen.h"
#include "trace/workload.h"

namespace simmr {
namespace {

namespace fs = std::filesystem;

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// A small Facebook-model workload with deadlines, deterministic by seed.
trace::WorkloadTrace SyntheticWorkload(int jobs, std::uint64_t seed) {
  Rng rng(seed);
  const trace::FacebookWorkloadModel model;
  const auto pool = trace::SynthesizeFacebookWorkload(model, jobs, rng);
  core::SimConfig solo;
  solo.map_slots = 8;
  solo.reduce_slots = 8;
  const auto solos = core::MeasureSoloCompletions(pool, solo);
  trace::WorkloadParams params;
  params.num_jobs = jobs;
  params.deadline_factor = 1.5;
  return trace::MakeWorkload(pool, solos, params, rng);
}

TEST(EventLogRoundTrip, ReplayCompletionsAreBitIdenticalAfterFileCycle) {
  const trace::WorkloadTrace workload = SyntheticWorkload(12, 7);
  obs::EventLogObserver observer;
  core::SimConfig cfg;
  cfg.map_slots = 8;
  cfg.reduce_slots = 8;
  cfg.record_tasks = true;
  cfg.observer = &observer;
  sched::FifoPolicy fifo;
  const core::SimResult result = core::Replay(workload, fifo, cfg);

  const fs::path path =
      fs::temp_directory_path() / "simmr_eventlog_roundtrip.jsonl";
  observer.WriteFile(path.string(), {"integration_test", "fifo", "simmr"});
  const analysis::RunRecord record = analysis::RunRecord::Load(path.string());
  fs::remove(path);

  ASSERT_EQ(record.jobs.size(), result.jobs.size());
  for (const core::JobResult& expected : result.jobs) {
    const analysis::JobRun* job =
        record.FindJob(static_cast<std::int32_t>(expected.job));
    ASSERT_NE(job, nullptr) << "job " << expected.job << " missing from log";
    EXPECT_TRUE(BitEqual(job->arrival, expected.arrival));
    EXPECT_TRUE(BitEqual(job->completion, expected.completion))
        << "job " << expected.job << ": " << job->completion << " vs "
        << expected.completion;
    EXPECT_TRUE(BitEqual(job->map_stage_end, expected.map_stage_end));
  }
  // Per-task timings survive too: the engine's task records and the log's
  // reconstructed successful attempts must agree bit for bit.
  std::size_t succeeded = 0;
  for (const analysis::JobRun& job : record.jobs) {
    succeeded += job.tasks.size();
  }
  EXPECT_EQ(succeeded, result.tasks.size());
  const auto reconstructed = analysis::ToSimTaskRecords(record);
  ASSERT_EQ(reconstructed.size(), result.tasks.size());
}

TEST(EventLogRoundTrip, SameWorkloadTwiceDiffsAsIdentical) {
  // Determinism check through the whole file pipeline: two identical runs
  // must produce logs that simmr_analyze's differ calls identical.
  const fs::path dir = fs::temp_directory_path();
  const fs::path path_a = dir / "simmr_eventlog_a.jsonl";
  const fs::path path_b = dir / "simmr_eventlog_b.jsonl";
  for (const fs::path& path : {path_a, path_b}) {
    const trace::WorkloadTrace workload = SyntheticWorkload(6, 21);
    obs::EventLogObserver observer;
    core::SimConfig cfg;
    cfg.map_slots = 4;
    cfg.reduce_slots = 4;
    cfg.observer = &observer;
    sched::MinEdfPolicy policy(cfg.map_slots, cfg.reduce_slots);
    core::Replay(workload, policy, cfg);
    observer.WriteFile(path.string(), {"integration_test", "minedf", "simmr"});
  }
  const analysis::RunDiff diff =
      analysis::DiffRuns(analysis::RunRecord::Load(path_a.string()),
                         analysis::RunRecord::Load(path_b.string()));
  fs::remove(path_a);
  fs::remove(path_b);
  EXPECT_TRUE(diff.identical) << diff.first_divergence;
}

TEST(EventLogRoundTrip, TestbedRunSurvivesFileCycle) {
  // The cluster simulator feeds the same observer interface; its logs must
  // round-trip just as losslessly.
  std::vector<cluster::SubmittedJob> jobs{
      {cluster::ValidationSuite()[0], 0.0, 0.0},
      {cluster::ValidationSuite()[1], 10.0, 0.0},
  };
  cluster::TestbedOptions opts;
  opts.config.num_nodes = 8;
  opts.seed = 99;
  obs::EventLogObserver observer;
  opts.observer = &observer;
  const cluster::TestbedResult result = cluster::RunTestbed(jobs, opts);

  const fs::path path =
      fs::temp_directory_path() / "simmr_eventlog_testbed.jsonl";
  observer.WriteFile(path.string(), {"integration_test", "testbed", "testbed"});
  const analysis::RunRecord record = analysis::RunRecord::Load(path.string());
  fs::remove(path);

  EXPECT_EQ(record.header.simulator, "testbed");
  EXPECT_EQ(record.jobs.size(), result.log.jobs().size());
  // The latest logged timestamp is the run's makespan (the final event the
  // engine processed fires at the last completion).
  EXPECT_TRUE(BitEqual(record.makespan, result.makespan))
      << record.makespan << " vs " << result.makespan;
  for (const analysis::JobRun& job : record.jobs) {
    EXPECT_TRUE(job.completed) << "job " << job.id;
  }
}

}  // namespace
}  // namespace simmr
