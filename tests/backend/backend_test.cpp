// SimBackend / RunResult / SimSession tests: lossless adaptation from all
// three simulators' native results, policy construction by name, and
// deterministic session replays independent of thread count.
#include "backend/backends.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "backend/run_result.h"
#include "backend/session.h"
#include "cluster/cluster_sim.h"
#include "core/simmr.h"
#include "mumak/mumak_sim.h"
#include "sched/fifo.h"
#include "simcore/parallel.h"
#include "simcore/rng.h"
#include "trace/synthetic_tracegen.h"

namespace simmr::backend {
namespace {

trace::JobProfile UniformProfile(int num_maps, int num_reduces) {
  trace::JobProfile p;
  p.app_name = "uniform";
  p.num_maps = num_maps;
  p.num_reduces = num_reduces;
  p.map_durations.assign(num_maps, 10.0);
  p.first_shuffle_durations.assign(1, 3.0);
  if (num_reduces > 1)
    p.typical_shuffle_durations.assign(num_reduces - 1, 5.0);
  p.reduce_durations.assign(num_reduces, 2.0);
  return p;
}

std::shared_ptr<std::vector<trace::JobProfile>> SmallPool() {
  auto pool = std::make_shared<std::vector<trace::JobProfile>>();
  Rng rng(7);
  trace::SyntheticJobSpec spec;
  spec.num_maps = 20;
  spec.num_reduces = 4;
  spec.map_duration = std::make_shared<UniformDist>(5.0, 15.0);
  spec.typical_shuffle_duration = std::make_shared<UniformDist>(3.0, 7.0);
  spec.reduce_duration = std::make_shared<UniformDist>(1.0, 3.0);
  for (int i = 0; i < 4; ++i)
    pool->push_back(trace::SynthesizeProfile(spec, rng));
  return pool;
}

// ---------------------------------------------------------------- adapters

TEST(RunResult, FromSimResultIsLossless) {
  trace::WorkloadTrace w(2);
  w[0].profile = UniformProfile(6, 2);
  w[0].deadline = 300.0;
  w[1].profile = UniformProfile(4, 1);
  w[1].arrival = 50.0;
  core::SimConfig cfg;
  cfg.map_slots = 4;
  cfg.reduce_slots = 2;
  cfg.record_tasks = true;
  sched::FifoPolicy fifo;
  const core::SimResult native = core::Replay(w, fifo, cfg);

  trace::WorkloadTrace w2(2);
  w2[0] = w[0];
  w2[1] = w[1];
  const RunResult unified = SimmrBackend(cfg, fifo, std::move(w2)).Run();

  EXPECT_EQ(unified.simulator, "simmr");
  EXPECT_EQ(unified.events_processed, native.events_processed);
  EXPECT_DOUBLE_EQ(unified.makespan, native.makespan);
  EXPECT_EQ(unified.history, nullptr);
  ASSERT_EQ(unified.jobs.size(), native.jobs.size());
  for (std::size_t i = 0; i < native.jobs.size(); ++i) {
    EXPECT_EQ(unified.jobs[i].job, native.jobs[i].job);
    EXPECT_EQ(unified.jobs[i].name, native.jobs[i].name);
    EXPECT_DOUBLE_EQ(unified.jobs[i].submit, native.jobs[i].arrival);
    EXPECT_DOUBLE_EQ(unified.jobs[i].first_launch,
                     native.jobs[i].first_launch);
    EXPECT_DOUBLE_EQ(unified.jobs[i].map_stage_end,
                     native.jobs[i].map_stage_end);
    EXPECT_DOUBLE_EQ(unified.jobs[i].finish, native.jobs[i].completion);
    EXPECT_DOUBLE_EQ(unified.jobs[i].deadline, native.jobs[i].deadline);
    EXPECT_DOUBLE_EQ(unified.jobs[i].CompletionTime(),
                     native.jobs[i].CompletionTime());
    EXPECT_EQ(unified.jobs[i].MissedDeadline(),
              native.jobs[i].MissedDeadline());
  }
  ASSERT_EQ(unified.tasks.size(), native.tasks.size());

  // The round trip back to the engine's shape is exact.
  const core::SimResult back = ToSimResult(unified);
  ASSERT_EQ(back.jobs.size(), native.jobs.size());
  for (std::size_t i = 0; i < native.jobs.size(); ++i) {
    EXPECT_EQ(back.jobs[i].name, native.jobs[i].name);
    EXPECT_DOUBLE_EQ(back.jobs[i].arrival, native.jobs[i].arrival);
    EXPECT_DOUBLE_EQ(back.jobs[i].first_launch, native.jobs[i].first_launch);
    EXPECT_DOUBLE_EQ(back.jobs[i].map_stage_end,
                     native.jobs[i].map_stage_end);
    EXPECT_DOUBLE_EQ(back.jobs[i].completion, native.jobs[i].completion);
    EXPECT_DOUBLE_EQ(back.jobs[i].deadline, native.jobs[i].deadline);
  }
  EXPECT_EQ(back.tasks.size(), native.tasks.size());
  EXPECT_EQ(back.events_processed, native.events_processed);
  EXPECT_DOUBLE_EQ(back.makespan, native.makespan);
}

TEST(RunResult, FromTestbedResultRetainsTheFullHistory) {
  std::vector<cluster::SubmittedJob> jobs;
  for (const auto& spec : cluster::ValidationSuite()) {
    jobs.push_back({spec, 0.0, 0.0});
    break;  // one job is enough
  }
  cluster::TestbedOptions opts;
  opts.config.num_nodes = 8;
  opts.seed = 42;
  const cluster::TestbedResult native = cluster::RunTestbed(jobs, opts);
  const RunResult unified = TestbedBackend(jobs, opts).Run();

  EXPECT_EQ(unified.simulator, "testbed");
  EXPECT_EQ(unified.events_processed, native.events_processed);
  EXPECT_DOUBLE_EQ(unified.makespan, native.makespan);

  // Projection: per-job outcomes match the log's job records.
  ASSERT_EQ(unified.jobs.size(), native.log.jobs().size());
  for (std::size_t i = 0; i < unified.jobs.size(); ++i) {
    const cluster::JobRecord& rec = native.log.jobs()[i];
    EXPECT_DOUBLE_EQ(unified.jobs[i].submit, rec.submit_time);
    EXPECT_DOUBLE_EQ(unified.jobs[i].first_launch, rec.launch_time);
    EXPECT_DOUBLE_EQ(unified.jobs[i].map_stage_end, rec.maps_done_time);
    EXPECT_DOUBLE_EQ(unified.jobs[i].finish, rec.finish_time);
  }

  // Tasks: every successful attempt, projected.
  std::size_t succeeded = 0;
  for (const auto& task : native.log.tasks())
    if (task.succeeded) ++succeeded;
  EXPECT_EQ(unified.tasks.size(), succeeded);

  // Losslessness: the full history log rides along, bit-for-bit equal to
  // the native run's (node ids, attempts, input sizes included).
  ASSERT_NE(unified.history, nullptr);
  EXPECT_EQ(unified.history->jobs().size(), native.log.jobs().size());
  EXPECT_EQ(unified.history->tasks().size(), native.log.tasks().size());
  for (std::size_t i = 0; i < native.log.tasks().size(); ++i) {
    EXPECT_EQ(unified.history->tasks()[i].node,
              native.log.tasks()[i].node);
    EXPECT_DOUBLE_EQ(unified.history->tasks()[i].start,
                     native.log.tasks()[i].start);
  }
}

TEST(RunResult, FromMumakResultMarksUnknownTimesAsMinusOne) {
  cluster::TestbedOptions opts;
  opts.config.num_nodes = 8;
  std::vector<cluster::SubmittedJob> jobs;
  jobs.push_back({cluster::ValidationSuite().front(), 0.0, 0.0});
  const auto log = cluster::RunTestbed(jobs, opts).log;
  const auto rumen = mumak::RumenTrace::FromHistory(log);
  mumak::MumakConfig mcfg;
  mcfg.num_nodes = 8;
  const mumak::MumakResult native = mumak::RunMumak(rumen, mcfg);
  const RunResult unified = MumakBackend(rumen, mcfg).Run();

  EXPECT_EQ(unified.simulator, "mumak");
  EXPECT_EQ(unified.events_processed, native.events_processed);
  ASSERT_EQ(unified.jobs.size(), native.jobs.size());
  for (std::size_t i = 0; i < unified.jobs.size(); ++i) {
    EXPECT_EQ(unified.jobs[i].name, native.jobs[i].name);
    EXPECT_DOUBLE_EQ(unified.jobs[i].submit, native.jobs[i].submit_time);
    EXPECT_DOUBLE_EQ(unified.jobs[i].finish, native.jobs[i].finish_time);
    // Mumak models neither first launch nor the map-stage boundary.
    EXPECT_DOUBLE_EQ(unified.jobs[i].first_launch, -1.0);
    EXPECT_DOUBLE_EQ(unified.jobs[i].map_stage_end, -1.0);
  }
  EXPECT_TRUE(unified.tasks.empty());
  EXPECT_EQ(unified.history, nullptr);
}

TEST(RunResult, DeadlineHelpersMatchCoreDefinitions) {
  std::vector<JobOutcome> jobs(3);
  jobs[0].finish = 150.0;
  jobs[0].deadline = 100.0;  // missed by 50%
  jobs[1].finish = 90.0;
  jobs[1].deadline = 100.0;  // met
  jobs[2].finish = 500.0;
  jobs[2].deadline = 0.0;    // no deadline
  EXPECT_DOUBLE_EQ(RelativeDeadlineExceeded(jobs), 0.5);
  EXPECT_EQ(MissedDeadlineCount(jobs), 1);
}

// ----------------------------------------------------------------- policy

TEST(MakePolicy, BuildsEveryKnownPolicy) {
  for (const char* name : {"fifo", "maxedf", "minedf", "fair", "capacity"}) {
    const auto policy = MakePolicy(name, 16, 16);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_STRNE(policy->Name(), "") << name;
  }
}

TEST(MakePolicy, ThrowsOnUnknownName) {
  EXPECT_THROW(MakePolicy("lifo", 16, 16), std::invalid_argument);
  EXPECT_THROW(MakePolicy("", 16, 16), std::invalid_argument);
}

// ---------------------------------------------------------------- session

TEST(SimSession, RejectsEmptyPoolAndMisalignedSolos) {
  EXPECT_THROW(
      SimSession(std::make_shared<std::vector<trace::JobProfile>>(), nullptr),
      std::invalid_argument);
  auto pool = SmallPool();
  auto bad_solos = std::make_shared<std::vector<double>>(pool->size() + 1);
  EXPECT_THROW(SimSession(pool, bad_solos), std::invalid_argument);
}

TEST(SimSession, DeadlineFactorRequiresSoloCompletions) {
  const SimSession session(SmallPool(), nullptr);
  ReplaySpec spec;
  spec.deadline_factor = 1.5;
  EXPECT_THROW(session.Replay(spec), std::invalid_argument);
}

TEST(SimSession, SameSpecSameSeedGivesIdenticalResults) {
  auto pool = SmallPool();
  core::SimConfig solo_cfg;
  solo_cfg.map_slots = 16;
  solo_cfg.reduce_slots = 8;
  auto solos = std::make_shared<std::vector<double>>(
      core::MeasureSoloCompletions(*pool, solo_cfg));
  const SimSession session(pool, solos);

  ReplaySpec spec;
  spec.policy = "minedf";
  spec.map_slots = 16;
  spec.reduce_slots = 8;
  spec.deadline_factor = 1.5;
  spec.num_jobs = 8;
  spec.seed = 99;
  const RunResult a = session.Replay(spec);
  const RunResult b = session.Replay(spec);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish, b.jobs[i].finish);
    EXPECT_DOUBLE_EQ(a.jobs[i].deadline, b.jobs[i].deadline);
  }

  ReplaySpec other = spec;
  other.seed = 100;
  const RunResult c = session.Replay(other);
  bool any_difference = c.jobs.size() != a.jobs.size();
  for (std::size_t i = 0; !any_difference && i < a.jobs.size(); ++i)
    any_difference = c.jobs[i].finish != a.jobs[i].finish;
  EXPECT_TRUE(any_difference) << "different seeds should differ";
}

TEST(SimSession, ConcurrentReplaysMatchSerialReplays) {
  // The simmr_sweep contract: one shared session, per-index specs with
  // split seeds, identical results at any thread count.
  auto pool = SmallPool();
  const SimSession session(pool, nullptr);
  const Rng master(42);

  const auto spec_for = [&](std::size_t i) {
    ReplaySpec spec;
    spec.policy = i % 2 == 0 ? "fifo" : "fair";
    spec.map_slots = 8;
    spec.reduce_slots = 4;
    spec.num_jobs = 6;
    spec.seed = master.Split("session", i)();
    return spec;
  };

  constexpr std::size_t kRuns = 8;
  std::vector<double> serial(kRuns), parallel(kRuns);
  for (std::size_t i = 0; i < kRuns; ++i)
    serial[i] = session.Replay(spec_for(i)).makespan;
  ParallelFor(
      kRuns,
      [&](std::size_t i) { parallel[i] = session.Replay(spec_for(i)).makespan; },
      4);
  for (std::size_t i = 0; i < kRuns; ++i)
    EXPECT_DOUBLE_EQ(serial[i], parallel[i]) << "session " << i;
}

TEST(SimBackend, NamesMatchTheResultSimulatorTag) {
  trace::WorkloadTrace w(1);
  w[0].profile = UniformProfile(4, 1);
  core::SimConfig cfg;
  sched::FifoPolicy fifo;
  SimmrBackend simmr_backend(cfg, fifo, std::move(w));
  EXPECT_STREQ(simmr_backend.name(), "simmr");
  EXPECT_EQ(simmr_backend.Run().simulator, simmr_backend.name());
}

}  // namespace
}  // namespace simmr::backend
