#include "prof/profiler.h"

#include <gtest/gtest.h>

#include <string>

#include "core/simmr.h"
#include "sched/fifo.h"
#include "simcore/parallel.h"
#include "trace/workload.h"

namespace simmr::prof {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

/// Deterministic workload: 3 jobs of 4 maps / 2 reduces each.
trace::WorkloadTrace SmallWorkload() {
  trace::WorkloadTrace w(3);
  for (int j = 0; j < 3; ++j) {
    trace::JobProfile p;
    p.app_name = "prof-test";
    p.num_maps = 4;
    p.num_reduces = 2;
    p.map_durations.assign(4, 10.0);
    p.first_shuffle_durations.assign(2, 3.0);
    p.reduce_durations.assign(2, 2.0);
    w[j].profile = p;
    w[j].arrival = 5.0 * j;
  }
  return w;
}

core::SimResult ReplayOnce() {
  core::SimConfig cfg;
  cfg.map_slots = 4;
  cfg.reduce_slots = 2;
  sched::FifoPolicy fifo;
  return core::Replay(SmallWorkload(), fifo, cfg);
}

/// Every test leaves the global profiler disarmed and zeroed.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Disarm();
    Reset();
  }
  void TearDown() override {
    Disarm();
    Reset();
  }
};

TEST_F(ProfilerTest, DisarmedCountersStayZero) {
  const auto result = ReplayOnce();
  EXPECT_GT(result.events_processed, 0u);
  EXPECT_EQ(Value(Counter::kEventsDispatched), 0u);
  EXPECT_EQ(Value(Counter::kHeapPushes), 0u);
  EXPECT_EQ(Value(Counter::kHeapPops), 0u);
  EXPECT_EQ(HighWaterValue(HighWater::kQueueDepth), 0u);
  EXPECT_EQ(HighWaterValue(HighWater::kReadySet), 0u);
}

TEST_F(ProfilerTest, ArmedDispatchCountMatchesReplayExactly) {
  Arm();
  const auto result = ReplayOnce();
  Disarm();
  // The acceptance invariant for --profile-out: the profiler's dispatch
  // count equals the engine's reported events_processed, exactly.
  EXPECT_EQ(Value(Counter::kEventsDispatched), result.events_processed);
  // The engine drains its queue dry, so pushes == pops == dispatches.
  EXPECT_EQ(Value(Counter::kHeapPushes), result.events_processed);
  EXPECT_EQ(Value(Counter::kHeapPops), result.events_processed);
  EXPECT_GT(HighWaterValue(HighWater::kQueueDepth), 0u);
}

TEST_F(ProfilerTest, ArmingDoesNotChangeSimulationResults) {
  const auto plain = ReplayOnce();
  Arm();
  const auto profiled = ReplayOnce();
  Disarm();
  ASSERT_EQ(plain.jobs.size(), profiled.jobs.size());
  EXPECT_EQ(plain.events_processed, profiled.events_processed);
  for (std::size_t i = 0; i < plain.jobs.size(); ++i) {
    // Bit-identical, not approximately equal: observation must not
    // perturb the simulation.
    EXPECT_EQ(plain.jobs[i].CompletionTime(),
              profiled.jobs[i].CompletionTime());
  }
}

TEST_F(ProfilerTest, ResetClearsEverything) {
  Arm();
  Count(Counter::kEventsDispatched, 7);
  RaiseHighWater(HighWater::kQueueDepth, 42);
  { ScopedTimer t("test/reset"); }
  RecordThreadBusy("pool", 1.0);
  Disarm();
  EXPECT_EQ(Value(Counter::kEventsDispatched), 7u);
  Reset();
  EXPECT_EQ(Value(Counter::kEventsDispatched), 0u);
  EXPECT_EQ(HighWaterValue(HighWater::kQueueDepth), 0u);
  const std::string json = ToJson("t", "s");
  EXPECT_TRUE(Contains(json, "\"scopes\":[]"));
  EXPECT_TRUE(Contains(json, "\"thread_pools\":[]"));
}

TEST_F(ProfilerTest, HighWaterKeepsTheMaximum) {
  Arm();
  RaiseHighWater(HighWater::kReadySet, 5);
  RaiseHighWater(HighWater::kReadySet, 3);
  RaiseHighWater(HighWater::kReadySet, 9);
  Disarm();
  EXPECT_EQ(HighWaterValue(HighWater::kReadySet), 9u);
}

TEST_F(ProfilerTest, ScopedTimerRecordsOnlyWhileArmed) {
  { ScopedTimer t("test/disarmed"); }
  Arm();
  { ScopedTimer t("test/armed"); }
  { ScopedTimer t("test/armed"); }
  Disarm();
  const std::string json = ToJson("t", "s");
  EXPECT_FALSE(Contains(json, "test/disarmed"));
  EXPECT_TRUE(Contains(json, "\"name\":\"test/armed\",\"calls\":2"));
}

TEST_F(ProfilerTest, ParallelForReportsPerThreadBusyTime) {
  Arm();
  std::atomic<int> touched{0};
  ParallelFor(64, [&](std::size_t) { touched.fetch_add(1); }, 4);
  Disarm();
  const std::string json = ToJson("t", "s");
  EXPECT_EQ(touched.load(), 64);
  EXPECT_TRUE(Contains(json, "\"name\":\"parallel_for\""));
  EXPECT_TRUE(Contains(json, "\"workers\":4"));
}

TEST_F(ProfilerTest, ToJsonCarriesSchemaAndIdentity) {
  Arm();
  Count(Counter::kAllocations, 3);
  Disarm();
  const std::string json = ToJson("my_tool", "my scenario");
  EXPECT_TRUE(Contains(json, "\"schema\":\"simmr.profile.v1\""));
  EXPECT_TRUE(Contains(json, "\"tool\":\"my_tool\""));
  EXPECT_TRUE(Contains(json, "\"scenario\":\"my scenario\""));
  EXPECT_TRUE(Contains(json, "\"allocations\":3"));
  EXPECT_TRUE(Contains(json, "\"compiled\":true"));
}

TEST_F(ProfilerTest, CountersAccumulateAcrossArmSpans) {
  Arm();
  Count(Counter::kHeapPushes, 2);
  Disarm();
  Count(Counter::kHeapPushes, 100);  // dropped: disarmed
  Arm();
  Count(Counter::kHeapPushes, 3);
  Disarm();
  EXPECT_EQ(Value(Counter::kHeapPushes), 5u);
}

}  // namespace
}  // namespace simmr::prof
