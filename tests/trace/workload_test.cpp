#include "trace/workload.h"

#include <gtest/gtest.h>

#include <set>

namespace simmr::trace {
namespace {

JobProfile TinyProfile(const std::string& name) {
  JobProfile p;
  p.app_name = name;
  p.num_maps = 1;
  p.num_reduces = 1;
  p.map_durations = {1.0};
  p.typical_shuffle_durations = {1.0};
  p.reduce_durations = {1.0};
  return p;
}

std::vector<JobProfile> Pool(int n) {
  std::vector<JobProfile> pool;
  for (int i = 0; i < n; ++i) pool.push_back(TinyProfile("app" + std::to_string(i)));
  return pool;
}

std::vector<double> Solos(int n, double value = 100.0) {
  return std::vector<double>(n, value);
}

TEST(MakeWorkload, DefaultsToOneInstancePerPoolEntry) {
  Rng rng(1);
  WorkloadParams params;
  const auto trace = MakeWorkload(Pool(5), Solos(5), params, rng);
  EXPECT_EQ(trace.size(), 5u);
  // Every pool entry appears exactly once (it's a permutation).
  std::set<std::string> names;
  for (const auto& j : trace) names.insert(j.profile.app_name);
  EXPECT_EQ(names.size(), 5u);
}

TEST(MakeWorkload, ArrivalsAreNondecreasing) {
  Rng rng(2);
  WorkloadParams params;
  params.num_jobs = 50;
  params.mean_interarrival_s = 10.0;
  const auto trace = MakeWorkload(Pool(5), Solos(5), params, rng);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
  }
  EXPECT_DOUBLE_EQ(trace[0].arrival, 0.0);
}

TEST(MakeWorkload, MeanInterarrivalApproximatelyRespected) {
  Rng rng(3);
  WorkloadParams params;
  params.num_jobs = 4000;
  params.mean_interarrival_s = 25.0;
  const auto trace = MakeWorkload(Pool(3), Solos(3), params, rng);
  const double span = trace.back().arrival;
  EXPECT_NEAR(span / (trace.size() - 1), 25.0, 2.0);
}

TEST(MakeWorkload, DeadlinesWithinFactorInterval) {
  Rng rng(4);
  WorkloadParams params;
  params.num_jobs = 200;
  params.deadline_factor = 2.5;
  const auto trace = MakeWorkload(Pool(2), Solos(2, 60.0), params, rng);
  for (const auto& j : trace) {
    const double relative = j.deadline - j.arrival;
    EXPECT_GE(relative, 60.0 - 1e-9);
    EXPECT_LE(relative, 150.0 + 1e-9);
    EXPECT_DOUBLE_EQ(j.solo_completion, 60.0);
  }
}

TEST(MakeWorkload, FactorOneGivesExactSoloDeadline) {
  Rng rng(5);
  WorkloadParams params;
  params.deadline_factor = 1.0;
  const auto trace = MakeWorkload(Pool(3), Solos(3, 42.0), params, rng);
  for (const auto& j : trace) {
    EXPECT_NEAR(j.deadline - j.arrival, 42.0, 1e-9);
  }
}

TEST(MakeWorkload, FactorZeroDisablesDeadlines) {
  Rng rng(6);
  WorkloadParams params;
  params.deadline_factor = 0.0;
  const auto trace = MakeWorkload(Pool(3), Solos(3), params, rng);
  for (const auto& j : trace) EXPECT_DOUBLE_EQ(j.deadline, 0.0);
}

TEST(MakeWorkload, OversizedRequestSamplesWithReplacement) {
  Rng rng(7);
  WorkloadParams params;
  params.num_jobs = 100;
  const auto trace = MakeWorkload(Pool(3), Solos(3), params, rng);
  EXPECT_EQ(trace.size(), 100u);
}

TEST(MakeWorkload, PermutationDiffersAcrossSeeds) {
  WorkloadParams params;
  Rng a(8), b(9);
  const auto ta = MakeWorkload(Pool(10), Solos(10), params, a);
  const auto tb = MakeWorkload(Pool(10), Solos(10), params, b);
  bool any_diff = false;
  for (std::size_t i = 0; i < ta.size(); ++i) {
    if (ta[i].profile.app_name != tb[i].profile.app_name) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(MakeWorkload, NoPermutationKeepsPoolOrder) {
  Rng rng(10);
  WorkloadParams params;
  params.permute = false;
  params.mean_interarrival_s = 0.0;
  const auto trace = MakeWorkload(Pool(4), Solos(4), params, rng);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].profile.app_name, "app" + std::to_string(i));
    EXPECT_DOUBLE_EQ(trace[i].arrival, 0.0);
  }
}

TEST(MakeWorkload, RejectsBadInputs) {
  Rng rng(11);
  WorkloadParams params;
  EXPECT_THROW(MakeWorkload({}, {}, params, rng), std::invalid_argument);
  EXPECT_THROW(MakeWorkload(Pool(2), Solos(3), params, rng),
               std::invalid_argument);
  params.deadline_factor = 0.5;
  EXPECT_THROW(MakeWorkload(Pool(2), Solos(2), params, rng),
               std::invalid_argument);
  params.deadline_factor = 1.0;
  params.mean_interarrival_s = -1.0;
  EXPECT_THROW(MakeWorkload(Pool(2), Solos(2), params, rng),
               std::invalid_argument);
}

TEST(MakeWorkload, SubsetRequestTakesPermutationPrefix) {
  Rng rng(12);
  WorkloadParams params;
  params.num_jobs = 3;
  const auto trace = MakeWorkload(Pool(10), Solos(10), params, rng);
  EXPECT_EQ(trace.size(), 3u);
  // No duplicates in a subset draw.
  std::set<std::string> names;
  for (const auto& j : trace) names.insert(j.profile.app_name);
  EXPECT_EQ(names.size(), 3u);
}

}  // namespace
}  // namespace simmr::trace
