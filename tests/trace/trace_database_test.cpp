#include "trace/trace_database.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

namespace simmr::trace {
namespace {

namespace fs = std::filesystem;

JobProfile Profile(const std::string& app, const std::string& dataset) {
  JobProfile p;
  p.app_name = app;
  p.dataset = dataset;
  p.num_maps = 2;
  p.num_reduces = 1;
  p.map_durations = {1.0, 2.0};
  p.typical_shuffle_durations = {3.0};
  p.reduce_durations = {4.0};
  return p;
}

class TraceDatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test directory: ctest runs each TEST as its own process, often
    // in parallel, and a shared path would let one test's SetUp wipe
    // another's files mid-run.
    dir_ = fs::temp_directory_path() /
           (std::string("simmr_tracedb_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(TraceDatabaseTest, PutAssignsSequentialIds) {
  TraceDatabase db;
  EXPECT_EQ(db.Put(Profile("A", "1")), 0);
  EXPECT_EQ(db.Put(Profile("B", "2")), 1);
  EXPECT_EQ(db.size(), 2u);
}

TEST_F(TraceDatabaseTest, GetReturnsStoredProfile) {
  TraceDatabase db;
  const auto id = db.Put(Profile("Sort", "16GB"));
  EXPECT_EQ(db.Get(id).app_name, "Sort");
  EXPECT_EQ(db.Get(id).dataset, "16GB");
}

TEST_F(TraceDatabaseTest, GetRejectsUnknownId) {
  TraceDatabase db;
  EXPECT_THROW(db.Get(0), std::out_of_range);
  db.Put(Profile("A", "1"));
  EXPECT_THROW(db.Get(1), std::out_of_range);
  EXPECT_THROW(db.Get(-1), std::out_of_range);
}

TEST_F(TraceDatabaseTest, PutValidatesProfile) {
  TraceDatabase db;
  JobProfile bad = Profile("A", "1");
  bad.map_durations.clear();
  EXPECT_THROW(db.Put(bad), std::invalid_argument);
  EXPECT_TRUE(db.empty());
}

TEST_F(TraceDatabaseTest, FindByAppFiltersAndOrders) {
  TraceDatabase db;
  db.Put(Profile("Sort", "16GB"));
  db.Put(Profile("WordCount", "32GB"));
  db.Put(Profile("Sort", "32GB"));
  const auto ids = db.FindByApp("Sort");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], 0);
  EXPECT_EQ(ids[1], 2);
  EXPECT_TRUE(db.FindByApp("Missing").empty());
}

TEST_F(TraceDatabaseTest, AllIdsInInsertionOrder) {
  TraceDatabase db;
  db.Put(Profile("A", "1"));
  db.Put(Profile("B", "2"));
  const auto ids = db.AllIds();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], 0);
  EXPECT_EQ(ids[1], 1);
}

TEST_F(TraceDatabaseTest, SaveLoadRoundTrip) {
  TraceDatabase db;
  db.Put(Profile("Sort", "16GB"));
  db.Put(Profile("WordCount", "40GB"));
  db.Save(dir_.string());

  const TraceDatabase loaded = TraceDatabase::Load(dir_.string());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.Get(0), db.Get(0));
  EXPECT_EQ(loaded.Get(1), db.Get(1));
  EXPECT_EQ(loaded.FindByApp("Sort").size(), 1u);
}

TEST_F(TraceDatabaseTest, SaveCreatesIndexAndProfileFiles) {
  TraceDatabase db;
  db.Put(Profile("A", "1"));
  db.Save(dir_.string());
  EXPECT_TRUE(fs::exists(dir_ / "index.tsv"));
  EXPECT_TRUE(fs::exists(dir_ / "profile_0.trace"));
}

TEST_F(TraceDatabaseTest, LoadMissingDirectoryThrows) {
  EXPECT_THROW(TraceDatabase::Load((dir_ / "nope").string()),
               std::runtime_error);
}

TEST_F(TraceDatabaseTest, LoadMissingProfileFileThrows) {
  TraceDatabase db;
  db.Put(Profile("A", "1"));
  db.Save(dir_.string());
  fs::remove(dir_ / "profile_0.trace");
  EXPECT_THROW(TraceDatabase::Load(dir_.string()), std::runtime_error);
}

TEST_F(TraceDatabaseTest, EmptyDatabaseRoundTrips) {
  TraceDatabase db;
  db.Save(dir_.string());
  const TraceDatabase loaded = TraceDatabase::Load(dir_.string());
  EXPECT_TRUE(loaded.empty());
}

TEST_F(TraceDatabaseTest, RoundTripIsBitExactForAwkwardDoubles) {
  // Durations that have no short decimal form: the persisted profile must
  // come back bit-identical (Write serializes at max_digits10), which is
  // what makes fuzzer reproducers and golden comparisons meaningful.
  JobProfile p = Profile("Awkward", "doubles");
  p.map_durations = {1.0 / 3.0, 0.1, 5.9386992994495396};
  p.num_maps = 3;
  p.typical_shuffle_durations = {0.86704888618407205};
  p.reduce_durations = {2.5081061374475939};

  TraceDatabase db;
  db.Put(p);
  db.Save(dir_.string());
  const TraceDatabase loaded = TraceDatabase::Load(dir_.string());
  EXPECT_EQ(loaded.Get(0), p);  // operator== compares doubles exactly
}

TEST_F(TraceDatabaseTest, ResaveIsByteIdentical) {
  // Save -> Load -> Save must reproduce the same bytes: the on-disk form
  // is a fixpoint, so re-persisting a database never churns diffs.
  TraceDatabase db;
  JobProfile p = Profile("Fixpoint", "bytes");
  p.map_durations = {1.0 / 3.0, 2.718281828459045};
  db.Put(p);
  db.Save(dir_.string());
  const auto read_file = [](const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  };
  const std::string first = read_file(dir_ / "profile_0.trace");

  const TraceDatabase loaded = TraceDatabase::Load(dir_.string());
  const fs::path second_dir = dir_ / "resave";
  loaded.Save(second_dir.string());
  EXPECT_EQ(read_file(second_dir / "profile_0.trace"), first);
}

TEST_F(TraceDatabaseTest, MapOnlyJobRoundTrips) {
  JobProfile p;
  p.app_name = "MapOnly";
  p.dataset = "noreduce";
  p.num_maps = 4;
  p.num_reduces = 0;
  p.map_durations = {1.0, 2.0, 3.0, 4.0};

  TraceDatabase db;
  db.Put(p);
  db.Save(dir_.string());
  const TraceDatabase loaded = TraceDatabase::Load(dir_.string());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.Get(0), p);
  EXPECT_EQ(loaded.Get(0).num_reduces, 0);
  EXPECT_TRUE(loaded.Get(0).reduce_durations.empty());
}

TEST_F(TraceDatabaseTest, SingleTaskJobRoundTrips) {
  JobProfile p;
  p.app_name = "Tiny";
  p.dataset = "single";
  p.num_maps = 1;
  p.num_reduces = 1;
  p.map_durations = {0.25};
  p.first_shuffle_durations = {0.5};
  p.reduce_durations = {0.125};

  TraceDatabase db;
  db.Put(p);
  db.Save(dir_.string());
  const TraceDatabase loaded = TraceDatabase::Load(dir_.string());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.Get(0), p);
}

}  // namespace
}  // namespace simmr::trace
