#include "trace/synthetic_tracegen.h"

#include <gtest/gtest.h>

#include <cmath>

#include "simcore/dist_fit.h"
#include "simcore/stats.h"

namespace simmr::trace {
namespace {

SyntheticJobSpec BasicSpec() {
  SyntheticJobSpec spec;
  spec.app_name = "synthetic-test";
  spec.num_maps = 50;
  spec.num_reduces = 10;
  spec.map_duration = std::make_shared<UniformDist>(10.0, 20.0);
  spec.typical_shuffle_duration = std::make_shared<UniformDist>(4.0, 6.0);
  spec.reduce_duration = std::make_shared<UniformDist>(1.0, 3.0);
  return spec;
}

TEST(SynthesizeProfile, PoolSizesMatchTaskCounts) {
  Rng rng(1);
  const JobProfile p = SynthesizeProfile(BasicSpec(), rng);
  EXPECT_EQ(static_cast<int>(p.map_durations.size()), 50);
  EXPECT_EQ(static_cast<int>(p.typical_shuffle_durations.size()), 10);
  EXPECT_EQ(static_cast<int>(p.reduce_durations.size()), 10);
  EXPECT_TRUE(p.first_shuffle_durations.empty());
  EXPECT_TRUE(p.Validate().empty()) << p.Validate();
}

TEST(SynthesizeProfile, FirstWaveSizeSplitsShufflePools) {
  SyntheticJobSpec spec = BasicSpec();
  spec.first_wave_size = 4;
  spec.first_shuffle_duration = std::make_shared<DeterministicDist>(9.0);
  Rng rng(1);
  const JobProfile p = SynthesizeProfile(spec, rng);
  EXPECT_EQ(p.first_shuffle_durations.size(), 4u);
  EXPECT_EQ(p.typical_shuffle_durations.size(), 6u);
  for (const double d : p.first_shuffle_durations) EXPECT_DOUBLE_EQ(d, 9.0);
}

TEST(SynthesizeProfile, FirstWaveSizeClampedToReduces) {
  SyntheticJobSpec spec = BasicSpec();
  spec.first_wave_size = 1000;
  Rng rng(1);
  const JobProfile p = SynthesizeProfile(spec, rng);
  EXPECT_EQ(p.first_shuffle_durations.size(), 10u);
  EXPECT_TRUE(p.typical_shuffle_durations.empty());
}

TEST(SynthesizeProfile, DurationsWithinDistributionSupport) {
  Rng rng(2);
  const JobProfile p = SynthesizeProfile(BasicSpec(), rng);
  for (const double d : p.map_durations) {
    EXPECT_GE(d, 10.0);
    EXPECT_LE(d, 20.0);
  }
}

TEST(SynthesizeProfile, RejectsMissingDistributions) {
  SyntheticJobSpec spec = BasicSpec();
  spec.map_duration = nullptr;
  Rng rng(1);
  EXPECT_THROW(SynthesizeProfile(spec, rng), std::invalid_argument);

  spec = BasicSpec();
  spec.reduce_duration = nullptr;
  EXPECT_THROW(SynthesizeProfile(spec, rng), std::invalid_argument);
}

TEST(SynthesizeProfile, RejectsBadTaskCounts) {
  SyntheticJobSpec spec = BasicSpec();
  spec.num_maps = 0;
  Rng rng(1);
  EXPECT_THROW(SynthesizeProfile(spec, rng), std::invalid_argument);
  spec = BasicSpec();
  spec.num_reduces = -1;
  EXPECT_THROW(SynthesizeProfile(spec, rng), std::invalid_argument);
}

TEST(SynthesizeProfile, MapOnlyJobNeedsNoShuffleDists) {
  SyntheticJobSpec spec;
  spec.num_maps = 5;
  spec.num_reduces = 0;
  spec.map_duration = std::make_shared<DeterministicDist>(1.0);
  Rng rng(1);
  const JobProfile p = SynthesizeProfile(spec, rng);
  EXPECT_TRUE(p.Validate().empty()) << p.Validate();
}

TEST(SynthesizeProfile, NegativeSamplesClampedToZero) {
  SyntheticJobSpec spec = BasicSpec();
  spec.map_duration = std::make_shared<NormalDist>(-5.0, 1.0);
  Rng rng(1);
  const JobProfile p = SynthesizeProfile(spec, rng);
  for (const double d : p.map_durations) EXPECT_GE(d, 0.0);
  EXPECT_TRUE(p.Validate().empty());
}

TEST(FacebookBuckets, ProbabilitiesSumToOne) {
  double sum = 0.0;
  for (const auto& b : FacebookJobSizeBuckets()) sum += b.probability;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(FacebookBuckets, RangesAreOrdered) {
  for (const auto& b : FacebookJobSizeBuckets()) {
    EXPECT_LE(b.maps_lo, b.maps_hi);
    EXPECT_LE(b.reduces_lo, b.reduces_hi);
    EXPECT_GE(b.maps_lo, 1);
    EXPECT_GE(b.reduces_lo, 1);
  }
}

TEST(FacebookWorkload, JobsAreValidProfiles) {
  FacebookWorkloadModel model;
  Rng rng(3);
  const auto jobs = SynthesizeFacebookWorkload(model, 200, rng);
  ASSERT_EQ(jobs.size(), 200u);
  for (const auto& p : jobs) {
    EXPECT_TRUE(p.Validate().empty()) << p.Validate();
    EXPECT_LE(p.num_maps, model.max_maps);
    EXPECT_LE(p.num_reduces, model.max_reduces);
  }
}

TEST(FacebookWorkload, MostJobsAreTiny) {
  // The dominant Facebook bucket is 1-2 maps (38%).
  FacebookWorkloadModel model;
  Rng rng(4);
  const auto jobs = SynthesizeFacebookWorkload(model, 2000, rng);
  int tiny = 0;
  for (const auto& p : jobs) {
    if (p.num_maps <= 2) ++tiny;
  }
  EXPECT_NEAR(static_cast<double>(tiny) / jobs.size(), 0.38, 0.05);
}

TEST(FacebookWorkload, MapDurationsFollowPaperLogNormal) {
  // Pool all map durations from many jobs and refit: the recovered LN
  // parameters must be close to LN(9.9511, 1.6764) (ms) = LN(mu - ln 1000)
  // in seconds.
  FacebookWorkloadModel model;
  Rng rng(5);
  const auto jobs = SynthesizeFacebookWorkload(model, 400, rng);
  std::vector<double> durations;
  for (const auto& p : jobs)
    durations.insert(durations.end(), p.map_durations.begin(),
                     p.map_durations.end());
  ASSERT_GT(durations.size(), 5000u);
  const auto fit = FitLogNormal(durations);
  ASSERT_TRUE(fit.has_value());
  const auto* ln = dynamic_cast<const LogNormalDist*>(fit->dist.get());
  ASSERT_NE(ln, nullptr);
  EXPECT_NEAR(ln->mu(), 9.9511 - std::log(1000.0), 0.1);
  EXPECT_NEAR(ln->sigma(), 1.6764, 0.1);
}

TEST(FacebookWorkload, ShuffleFractionSplitsReduceDuration) {
  FacebookWorkloadModel model;
  model.shuffle_fraction = 0.4;
  Rng rng(6);
  const JobProfile p = SynthesizeFacebookJob(model, rng);
  ASSERT_EQ(p.typical_shuffle_durations.size(), p.reduce_durations.size());
  for (std::size_t i = 0; i < p.reduce_durations.size(); ++i) {
    const double total =
        p.typical_shuffle_durations[i] + p.reduce_durations[i];
    EXPECT_NEAR(p.typical_shuffle_durations[i], 0.4 * total, 1e-9);
  }
}

TEST(FacebookWorkload, DeterministicGivenRngSeed) {
  FacebookWorkloadModel model;
  Rng a(7), b(7);
  const auto ja = SynthesizeFacebookWorkload(model, 20, a);
  const auto jb = SynthesizeFacebookWorkload(model, 20, b);
  ASSERT_EQ(ja.size(), jb.size());
  for (std::size_t i = 0; i < ja.size(); ++i) EXPECT_EQ(ja[i], jb[i]);
}

}  // namespace
}  // namespace simmr::trace
