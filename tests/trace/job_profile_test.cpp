#include "trace/job_profile.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace simmr::trace {
namespace {

JobProfile SampleProfile() {
  JobProfile p;
  p.app_name = "WordCount";
  p.dataset = "wiki-40GB";
  p.num_maps = 3;
  p.num_reduces = 2;
  p.map_durations = {10.0, 11.5, 9.25};
  p.first_shuffle_durations = {4.5};
  p.typical_shuffle_durations = {6.0};
  p.reduce_durations = {2.0, 2.5};
  return p;
}

TEST(JobProfile, ValidProfilePassesValidation) {
  EXPECT_TRUE(SampleProfile().Validate().empty());
}

TEST(JobProfile, RejectsNonpositiveMapCount) {
  JobProfile p = SampleProfile();
  p.num_maps = 0;
  EXPECT_FALSE(p.Validate().empty());
}

TEST(JobProfile, RejectsEmptyMapPool) {
  JobProfile p = SampleProfile();
  p.map_durations.clear();
  EXPECT_FALSE(p.Validate().empty());
}

TEST(JobProfile, RejectsEmptyReducePoolWhenReducesExist) {
  JobProfile p = SampleProfile();
  p.reduce_durations.clear();
  EXPECT_FALSE(p.Validate().empty());
}

TEST(JobProfile, RejectsMissingShuffleSamples) {
  JobProfile p = SampleProfile();
  p.first_shuffle_durations.clear();
  p.typical_shuffle_durations.clear();
  EXPECT_FALSE(p.Validate().empty());
}

TEST(JobProfile, RejectsTooManyShuffleSamples) {
  JobProfile p = SampleProfile();
  p.typical_shuffle_durations = {1.0, 2.0, 3.0};  // 1 first + 3 typical > 2
  EXPECT_FALSE(p.Validate().empty());
}

TEST(JobProfile, RejectsNegativeDurations) {
  JobProfile p = SampleProfile();
  p.map_durations[1] = -1.0;
  EXPECT_FALSE(p.Validate().empty());
}

TEST(JobProfile, RejectsNonFiniteDurations) {
  JobProfile p = SampleProfile();
  p.reduce_durations[0] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(p.Validate().empty());
}

TEST(JobProfile, MapOnlyJobIsValid) {
  JobProfile p;
  p.num_maps = 2;
  p.num_reduces = 0;
  p.map_durations = {1.0, 2.0};
  EXPECT_TRUE(p.Validate().empty()) << p.Validate();
}

TEST(JobProfile, RoundTripPreservesEverything) {
  const JobProfile original = SampleProfile();
  std::stringstream buffer;
  original.Write(buffer);
  const JobProfile loaded = JobProfile::Read(buffer);
  EXPECT_EQ(loaded, original);
}

TEST(JobProfile, RoundTripWithEmptyNames) {
  JobProfile p = SampleProfile();
  p.app_name.clear();
  p.dataset.clear();
  std::stringstream buffer;
  p.Write(buffer);
  const JobProfile loaded = JobProfile::Read(buffer);
  EXPECT_EQ(loaded, p);
}

TEST(JobProfile, RoundTripWithEmptyArrays) {
  JobProfile p;
  p.num_maps = 1;
  p.num_reduces = 0;
  p.map_durations = {5.0};
  std::stringstream buffer;
  p.Write(buffer);
  const JobProfile loaded = JobProfile::Read(buffer);
  EXPECT_EQ(loaded, p);
}

TEST(JobProfile, ReadRejectsBadMagic) {
  std::stringstream buffer("GARBAGE\n");
  EXPECT_THROW(JobProfile::Read(buffer), std::runtime_error);
}

TEST(JobProfile, ReadRejectsTruncatedArray) {
  std::stringstream buffer(
      "SIMMR-PROFILE-V1\napp A\ndataset D\nnum_maps 2\nnum_reduces 0\n"
      "map_durations 3 1.0 2.0\n");  // claims 3, has 2
  EXPECT_THROW(JobProfile::Read(buffer), std::runtime_error);
}

TEST(JobProfile, ReadRejectsWrongFieldOrder) {
  std::stringstream buffer(
      "SIMMR-PROFILE-V1\ndataset D\napp A\nnum_maps 1\nnum_reduces 0\n");
  EXPECT_THROW(JobProfile::Read(buffer), std::runtime_error);
}

TEST(JobProfile, SummariesReflectPools) {
  const JobProfile p = SampleProfile();
  EXPECT_DOUBLE_EQ(p.MapSummary().max, 11.5);
  EXPECT_NEAR(p.MapSummary().mean, (10.0 + 11.5 + 9.25) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(p.FirstShuffleSummary().mean, 4.5);
  EXPECT_DOUBLE_EQ(p.TypicalShuffleSummary().mean, 6.0);
  EXPECT_DOUBLE_EQ(p.ReduceSummary().min, 2.0);
}

}  // namespace
}  // namespace simmr::trace
