#include "trace/trace_scaling.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "simcore/stats.h"

namespace simmr::trace {
namespace {

JobProfile BaseProfile() {
  JobProfile p;
  p.app_name = "Sort";
  p.dataset = "rand-16GB";
  p.num_maps = 100;
  p.num_reduces = 20;
  p.map_durations.assign(100, 0.0);
  for (int i = 0; i < 100; ++i) p.map_durations[i] = 10.0 + (i % 7);
  p.first_shuffle_durations.assign(10, 4.0);
  p.typical_shuffle_durations.assign(10, 6.0);
  p.reduce_durations.assign(20, 2.0);
  return p;
}

TEST(TraceScaling, DoubleDataDoublesMapCount) {
  Rng rng(1);
  const JobProfile scaled = ScaleProfile(BaseProfile(), {2.0, 1.0}, rng);
  EXPECT_EQ(scaled.num_maps, 200);
  EXPECT_EQ(scaled.num_reduces, 20);
  EXPECT_EQ(scaled.map_durations.size(), 200u);
  EXPECT_TRUE(scaled.Validate().empty()) << scaled.Validate();
}

TEST(TraceScaling, MapDurationDistributionInvariant) {
  // Per-map work is block-sized: the scaled profile's map-duration mean
  // must match the original's.
  Rng rng(2);
  const JobProfile base = BaseProfile();
  const JobProfile scaled = ScaleProfile(base, {4.0, 1.0}, rng);
  const Summary orig = base.MapSummary();
  const Summary next = scaled.MapSummary();
  EXPECT_NEAR(next.mean, orig.mean, 0.5);
  EXPECT_LE(next.max, orig.max);
  EXPECT_GE(next.min, orig.min);
}

TEST(TraceScaling, ShuffleAndReduceScaleWithPerReduceData) {
  // data x2, reduces fixed => per-reduce volume x2 => durations x2.
  Rng rng(3);
  const JobProfile base = BaseProfile();
  const JobProfile scaled = ScaleProfile(base, {2.0, 1.0}, rng);
  EXPECT_NEAR(scaled.TypicalShuffleSummary().mean, 12.0, 1e-9);
  EXPECT_NEAR(scaled.ReduceSummary().mean, 4.0, 1e-9);
}

TEST(TraceScaling, GrowingReducesCancelsDataGrowth) {
  // data x2 and reduces x2 => per-reduce volume unchanged.
  Rng rng(4);
  const JobProfile scaled = ScaleProfile(BaseProfile(), {2.0, 2.0}, rng);
  EXPECT_EQ(scaled.num_reduces, 40);
  EXPECT_NEAR(scaled.TypicalShuffleSummary().mean, 6.0, 1e-9);
  EXPECT_NEAR(scaled.ReduceSummary().mean, 2.0, 1e-9);
}

TEST(TraceScaling, DownscaleWorksToo) {
  Rng rng(5);
  const JobProfile scaled = ScaleProfile(BaseProfile(), {0.5, 1.0}, rng);
  EXPECT_EQ(scaled.num_maps, 50);
  EXPECT_NEAR(scaled.ReduceSummary().mean, 1.0, 1e-9);
  EXPECT_TRUE(scaled.Validate().empty());
}

TEST(TraceScaling, KeepsWaveProportions) {
  // The base has a 50/50 first/typical split; the scaled profile should
  // keep roughly that split.
  Rng rng(6);
  const JobProfile scaled = ScaleProfile(BaseProfile(), {1.0, 2.0}, rng);
  EXPECT_EQ(scaled.first_shuffle_durations.size() +
                scaled.typical_shuffle_durations.size(),
            static_cast<std::size_t>(scaled.num_reduces));
  EXPECT_NEAR(static_cast<double>(scaled.first_shuffle_durations.size()) /
                  scaled.num_reduces,
              0.5, 0.1);
}

TEST(TraceScaling, IdentityFactorsKeepStatistics) {
  Rng rng(7);
  const JobProfile base = BaseProfile();
  const JobProfile scaled = ScaleProfile(base, {1.0, 1.0}, rng);
  EXPECT_EQ(scaled.num_maps, base.num_maps);
  EXPECT_EQ(scaled.num_reduces, base.num_reduces);
  EXPECT_NEAR(scaled.MapSummary().mean, base.MapSummary().mean, 0.5);
}

TEST(TraceScaling, RejectsBadFactors) {
  Rng rng(8);
  EXPECT_THROW(ScaleProfile(BaseProfile(), {0.0, 1.0}, rng),
               std::invalid_argument);
  EXPECT_THROW(ScaleProfile(BaseProfile(), {1.0, -2.0}, rng),
               std::invalid_argument);
}

TEST(TraceScaling, RejectsInvalidProfile) {
  Rng rng(9);
  JobProfile bad = BaseProfile();
  bad.map_durations.clear();
  EXPECT_THROW(ScaleProfile(bad, {2.0, 1.0}, rng), std::invalid_argument);
}

TEST(TraceScaling, SingleWaveProfileStaysSingleWave) {
  Rng rng(10);
  JobProfile base = BaseProfile();
  base.first_shuffle_durations.clear();
  base.typical_shuffle_durations.assign(20, 6.0);
  const JobProfile scaled = ScaleProfile(base, {3.0, 1.0}, rng);
  EXPECT_TRUE(scaled.first_shuffle_durations.empty());
  EXPECT_EQ(scaled.typical_shuffle_durations.size(), 20u);
}

TEST(TraceScaling, MarksDatasetAsScaled) {
  Rng rng(11);
  const JobProfile scaled = ScaleProfile(BaseProfile(), {2.0, 1.0}, rng);
  EXPECT_NE(scaled.dataset.find("scaled"), std::string::npos);
  EXPECT_EQ(scaled.app_name, "Sort");
}

}  // namespace
}  // namespace simmr::trace
