#include "trace/mr_profiler.h"

#include <gtest/gtest.h>

#include "cluster/cluster_sim.h"

namespace simmr::trace {
namespace {

using cluster::HistoryLog;
using cluster::JobRecord;
using cluster::TaskAttemptRecord;
using cluster::TaskKind;

/// Hand-built log: 2 maps ending at t=10; reduce 0 is first-wave (starts at
/// t=2, shuffle ends t=14), reduce 1 is typical (starts t=12, shuffle ends
/// t=17).
HistoryLog HandLog() {
  HistoryLog log;
  JobRecord j;
  j.job = 0;
  j.app_name = "App";
  j.dataset = "ds";
  j.num_maps = 2;
  j.num_reduces = 2;
  j.maps_done_time = 10.0;
  j.finish_time = 25.0;
  log.AddJob(j);

  TaskAttemptRecord m0{0, TaskKind::kMap, 0, 0, 0.0, 0.0, 8.0, 64.0};
  TaskAttemptRecord m1{0, TaskKind::kMap, 1, 1, 1.0, 1.0, 10.0, 64.0};
  TaskAttemptRecord r0{0, TaskKind::kReduce, 0, 2, 2.0, 14.0, 20.0, 10.0};
  TaskAttemptRecord r1{0, TaskKind::kReduce, 1, 3, 12.0, 17.0, 25.0, 10.0};
  log.AddTask(m0);
  log.AddTask(m1);
  log.AddTask(r0);
  log.AddTask(r1);
  return log;
}

TEST(MrProfiler, ExtractsMapDurations) {
  const JobProfile p = BuildProfile(HandLog(), 0);
  ASSERT_EQ(p.map_durations.size(), 2u);
  EXPECT_DOUBLE_EQ(p.map_durations[0], 8.0);
  EXPECT_DOUBLE_EQ(p.map_durations[1], 9.0);
}

TEST(MrProfiler, FirstShuffleIsNonOverlappingPortion) {
  const JobProfile p = BuildProfile(HandLog(), 0);
  // Reduce 0 started before maps_done (2 < 10): first wave. Its shuffle
  // ended at 14, so the non-overlapping portion is 14 - 10 = 4.
  ASSERT_EQ(p.first_shuffle_durations.size(), 1u);
  EXPECT_DOUBLE_EQ(p.first_shuffle_durations[0], 4.0);
}

TEST(MrProfiler, TypicalShuffleIsFullDuration) {
  const JobProfile p = BuildProfile(HandLog(), 0);
  // Reduce 1 started at 12 >= 10: typical. Shuffle = 17 - 12 = 5.
  ASSERT_EQ(p.typical_shuffle_durations.size(), 1u);
  EXPECT_DOUBLE_EQ(p.typical_shuffle_durations[0], 5.0);
}

TEST(MrProfiler, ReduceDurationsAreReducePhaseOnly) {
  const JobProfile p = BuildProfile(HandLog(), 0);
  // First-wave reduce phase first (20-14=6), then typical (25-17=8).
  ASSERT_EQ(p.reduce_durations.size(), 2u);
  EXPECT_DOUBLE_EQ(p.reduce_durations[0], 6.0);
  EXPECT_DOUBLE_EQ(p.reduce_durations[1], 8.0);
}

TEST(MrProfiler, FirstShuffleClampedAtZero) {
  // A first-wave reduce whose shuffle ends exactly when maps finish (fully
  // overlapped) records a zero non-overlapping portion.
  HistoryLog log = HandLog();
  TaskAttemptRecord r{0, TaskKind::kReduce, 2, 0, 1.0, 9.5, 12.0, 10.0};
  log.AddTask(r);
  const JobProfile p = BuildProfile(log, 0);
  // This task starts at 1.0 and therefore sorts before the original
  // first-wave reduce (start 2.0): it contributes entry [0].
  ASSERT_EQ(p.first_shuffle_durations.size(), 2u);
  EXPECT_DOUBLE_EQ(p.first_shuffle_durations[0], 0.0);
  EXPECT_DOUBLE_EQ(p.first_shuffle_durations[1], 4.0);
}

TEST(MrProfiler, CopiesJobMetadata) {
  const JobProfile p = BuildProfile(HandLog(), 0);
  EXPECT_EQ(p.app_name, "App");
  EXPECT_EQ(p.dataset, "ds");
  EXPECT_EQ(p.num_maps, 2);
  EXPECT_EQ(p.num_reduces, 2);
}

TEST(MrProfiler, ThrowsForUnknownJob) {
  EXPECT_THROW(BuildProfile(HandLog(), 99), std::out_of_range);
}

TEST(MrProfiler, ThrowsForJobWithoutTasks) {
  HistoryLog log;
  JobRecord j;
  j.job = 0;
  log.AddJob(j);
  EXPECT_THROW(BuildProfile(log, 0), std::runtime_error);
}

TEST(MrProfiler, ProfilesFromRealTestbedRunAreValid) {
  using namespace cluster;
  std::vector<SubmittedJob> jobs{{ValidationSuite()[3], 0.0, 0.0}};  // Sort
  TestbedOptions opts;
  opts.config.num_nodes = 16;
  const TestbedResult result = RunTestbed(jobs, opts);
  const auto profiles = BuildAllProfiles(result.log);
  ASSERT_EQ(profiles.size(), 1u);
  const JobProfile& p = profiles[0];
  EXPECT_TRUE(p.Validate().empty()) << p.Validate();
  EXPECT_EQ(static_cast<int>(p.map_durations.size()), p.num_maps);
  EXPECT_EQ(p.first_shuffle_durations.size() +
                p.typical_shuffle_durations.size(),
            static_cast<std::size_t>(p.num_reduces));
  EXPECT_EQ(static_cast<int>(p.reduce_durations.size()), p.num_reduces);
}

TEST(MrProfiler, BuildAllProfilesCoversEveryJob) {
  using namespace cluster;
  std::vector<SubmittedJob> jobs;
  JobSpec spec = ValidationSuite()[4];  // TFIDF, small
  for (int i = 0; i < 3; ++i) jobs.push_back({spec, i * 200.0, 0.0});
  TestbedOptions opts;
  opts.config.num_nodes = 16;
  const TestbedResult result = RunTestbed(jobs, opts);
  EXPECT_EQ(BuildAllProfiles(result.log).size(), 3u);
}

}  // namespace
}  // namespace simmr::trace
