#include "obs/trace_export.h"

#include <gtest/gtest.h>

#include <string>

#include "core/simmr.h"
#include "sched/fifo.h"

namespace simmr::obs {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(TraceExporter, GoldenSingleJobTrace) {
  TraceExporter t;
  t.OnJobArrival(0.0, 0, "sort", 100.0);
  t.OnTaskLaunch(0.0, 0, TaskKind::kMap, 0);
  t.OnTaskCompletion(10.0, 0, TaskKind::kMap, 0,
                     TaskTiming{0.0, 0.0, 10.0}, true);
  t.OnTaskLaunch(10.0, 0, TaskKind::kReduce, 0);
  t.OnTaskCompletion(20.0, 0, TaskKind::kReduce, 0,
                     TaskTiming{10.0, 16.0, 20.0}, true);
  t.OnJobCompletion(20.0, 0);

  // Instants (arrival, deadline, completion) + map slice + reduce slice
  // with its two nested phase slices + a running-task counter sample per
  // launch and completion.
  EXPECT_EQ(t.event_count(), 11u);

  const std::string json = t.ToJson();
  EXPECT_EQ(json.substr(0, 41),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{\"");
  EXPECT_EQ(json.back(), '}');

  // Map slice: full 10 s on the first map lane, microsecond timestamps.
  EXPECT_TRUE(Contains(
      json, "{\"name\":\"map 0.0\",\"cat\":\"map\",\"ph\":\"X\",\"ts\":0,"
            "\"pid\":1,\"tid\":1000,\"dur\":10000000,"
            "\"args\":{\"job\":0,\"index\":0,\"succeeded\":true}}"));
  // Reduce slice with nested shuffle/reduce phases at the 16 s boundary.
  EXPECT_TRUE(Contains(json, "\"name\":\"reduce 0.0\""));
  EXPECT_TRUE(Contains(
      json, "{\"name\":\"shuffle\",\"cat\":\"phase\",\"ph\":\"X\","
            "\"ts\":10000000,\"pid\":1,\"tid\":100000,\"dur\":6000000}"));
  EXPECT_TRUE(Contains(
      json, "{\"name\":\"reduce\",\"cat\":\"phase\",\"ph\":\"X\","
            "\"ts\":16000000,\"pid\":1,\"tid\":100000,\"dur\":4000000}"));
  // Instant events carry scope "t"; the deadline lands at its absolute time.
  EXPECT_TRUE(Contains(json, "\"name\":\"job 0 arrival\""));
  EXPECT_TRUE(Contains(
      json, "{\"name\":\"job 0 deadline\",\"cat\":\"deadline\","
            "\"ph\":\"i\",\"ts\":100000000,\"pid\":1,\"tid\":1,"
            "\"s\":\"t\",\"args\":{\"job\":0}}"));
  EXPECT_TRUE(Contains(json, "\"name\":\"job 0 completion\""));
  // Track metadata for the used lanes.
  EXPECT_TRUE(Contains(json, "\"args\":{\"name\":\"simmr\"}"));
  EXPECT_TRUE(Contains(json, "\"args\":{\"name\":\"jobs\"}"));
  EXPECT_TRUE(Contains(json, "\"args\":{\"name\":\"map slot 0\"}"));
  EXPECT_TRUE(Contains(json, "\"args\":{\"name\":\"reduce slot 0\"}"));
}

TEST(TraceExporter, SequentialTasksReuseTheirLane) {
  TraceExporter t;
  t.OnTaskLaunch(0.0, 0, TaskKind::kMap, 0);
  t.OnTaskCompletion(5.0, 0, TaskKind::kMap, 0, TaskTiming{0.0, 0.0, 5.0},
                     true);
  t.OnTaskLaunch(5.0, 0, TaskKind::kMap, 1);
  t.OnTaskCompletion(9.0, 0, TaskKind::kMap, 1, TaskTiming{5.0, 5.0, 9.0},
                     true);
  const std::string json = t.ToJson();
  EXPECT_TRUE(Contains(json, "\"tid\":1000"));
  EXPECT_FALSE(Contains(json, "\"tid\":1001"));
}

TEST(TraceExporter, ConcurrentTasksGetDistinctLanes) {
  TraceExporter t;
  t.OnTaskLaunch(0.0, 0, TaskKind::kMap, 0);
  t.OnTaskLaunch(0.0, 0, TaskKind::kMap, 1);
  t.OnTaskCompletion(5.0, 0, TaskKind::kMap, 0, TaskTiming{0.0, 0.0, 5.0},
                     true);
  t.OnTaskCompletion(6.0, 0, TaskKind::kMap, 1, TaskTiming{0.0, 0.0, 6.0},
                     true);
  const std::string json = t.ToJson();
  EXPECT_TRUE(Contains(json, "\"tid\":1000"));
  EXPECT_TRUE(Contains(json, "\"tid\":1001"));
  EXPECT_TRUE(Contains(json, "\"args\":{\"name\":\"map slot 1\"}"));
}

TEST(TraceExporter, CompletionWithoutLaunchStillRenders) {
  TraceExporter t;
  t.OnTaskCompletion(5.0, 2, TaskKind::kReduce, 3, TaskTiming{1.0, 1.0, 5.0},
                     true);
  // The slice plus one running_reduces counter sample (clamped at zero:
  // there was no matching launch).
  EXPECT_EQ(t.event_count(), 2u);
  EXPECT_TRUE(Contains(t.ToJson(), "\"name\":\"reduce 2.3\""));
  EXPECT_TRUE(Contains(t.ToJson(),
                       "\"name\":\"running_reduces\",\"cat\":\"tasks\","
                       "\"ph\":\"C\",\"ts\":5000000,\"pid\":1,\"tid\":0,"
                       "\"args\":{\"running\":0}"));
}

TEST(TraceExporter, RunningTaskCountersTrackOccupancy) {
  TraceExporter t;
  t.OnTaskLaunch(0.0, 0, TaskKind::kMap, 0);
  t.OnTaskLaunch(1.0, 0, TaskKind::kMap, 1);
  t.OnTaskLaunch(1.0, 0, TaskKind::kReduce, 0);
  t.OnTaskCompletion(5.0, 0, TaskKind::kMap, 0, TaskTiming{0.0, 0.0, 5.0},
                     true);
  const std::string json = t.ToJson();
  // Map occupancy rises 1 -> 2 and falls back to 1; reduces reach 1.
  EXPECT_TRUE(Contains(json, "\"name\":\"running_maps\",\"cat\":\"tasks\","
                             "\"ph\":\"C\",\"ts\":0,\"pid\":1,\"tid\":0,"
                             "\"args\":{\"running\":1}"));
  EXPECT_TRUE(Contains(json, "\"ts\":1000000,\"pid\":1,\"tid\":0,"
                             "\"args\":{\"running\":2}"));
  EXPECT_TRUE(Contains(json, "\"name\":\"running_maps\",\"cat\":\"tasks\","
                             "\"ph\":\"C\",\"ts\":5000000,\"pid\":1,"
                             "\"tid\":0,\"args\":{\"running\":1}"));
  EXPECT_TRUE(Contains(json, "\"name\":\"running_reduces\""));
}

TEST(TraceExporter, FailedAttemptsAreCategorizedFailed) {
  TraceExporter t;
  t.OnTaskLaunch(0.0, 0, TaskKind::kMap, 0);
  t.OnTaskCompletion(5.0, 0, TaskKind::kMap, 0, TaskTiming{0.0, 0.0, 5.0},
                     false);
  EXPECT_TRUE(Contains(t.ToJson(), "\"cat\":\"failed\""));
}

TEST(TraceExporter, SamplesQueueDepthCounters) {
  TraceExporter::Options options;
  options.queue_depth_sample_period = 2;
  TraceExporter t(options);
  for (int i = 0; i < 5; ++i) t.OnEventDequeue(i * 1.0, "EV", 7);
  // Dequeues 2 and 4 hit the period.
  EXPECT_EQ(t.event_count(), 2u);
  EXPECT_TRUE(Contains(t.ToJson(),
                       "\"ph\":\"C\",\"ts\":1000000,\"pid\":1,\"tid\":0,"
                       "\"args\":{\"depth\":7}"));
}

TEST(TraceExporter, WindowedQueueDepthSamplesAtWindowEnds) {
  TraceExporter::Options options;
  options.queue_depth_window_s = 10.0;
  TraceExporter t(options);
  t.OnEventDequeue(1.0, "EV", 3);
  t.OnEventDequeue(5.0, "EV", 8);
  t.OnEventDequeue(25.0, "EV", 2);

  // One counter per closed window, stamped at the window end with the
  // depth after the window's last dequeue — the same (t1, queue_depth)
  // pair the TimeSeriesSampler reports, so Perfetto and the time series
  // agree. Window 0 closes at t=10 with depth 8; window 1 (empty) at
  // t=20 still 8; the t=25 dequeue sits in the open window 2.
  EXPECT_EQ(t.event_count(), 2u);
  const std::string json = t.ToJson();
  EXPECT_TRUE(Contains(json, "\"ph\":\"C\",\"ts\":10000000,\"pid\":1,"
                             "\"tid\":0,\"args\":{\"depth\":8}"));
  EXPECT_TRUE(Contains(json, "\"ph\":\"C\",\"ts\":20000000,\"pid\":1,"
                             "\"tid\":0,\"args\":{\"depth\":8}"));
}

/// End-to-end: drive the exporter from a real engine replay and sanity-check
/// the shape of the result.
TEST(TraceExporter, EngineReplayProducesConsistentTrace) {
  trace::JobProfile p;
  p.app_name = "uniform";
  p.num_maps = 4;
  p.num_reduces = 2;
  p.map_durations.assign(4, 10.0);
  p.first_shuffle_durations.assign(2, 3.0);
  p.reduce_durations.assign(2, 2.0);
  trace::WorkloadTrace w(1);
  w[0].profile = p;

  TraceExporter t;
  core::SimConfig cfg;
  cfg.map_slots = 2;
  cfg.reduce_slots = 2;
  cfg.observer = &t;
  sched::FifoPolicy fifo;
  const auto result = core::Replay(w, fifo, cfg);
  ASSERT_EQ(result.jobs.size(), 1u);

  const std::string json = t.ToJson();
  EXPECT_TRUE(Contains(json, "\"traceEvents\":["));
  // All 4 maps and 2 reduces appear as slices.
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(Contains(json, "\"name\":\"map 0." + std::to_string(i)));
  for (int i = 0; i < 2; ++i)
    EXPECT_TRUE(Contains(json, "\"name\":\"reduce 0." + std::to_string(i)));
  // 2 map slots -> exactly lanes 1000 and 1001, never a third.
  EXPECT_TRUE(Contains(json, "\"tid\":1001"));
  EXPECT_FALSE(Contains(json, "\"tid\":1002"));
  EXPECT_TRUE(Contains(json, "\"name\":\"job 0 completion\""));
}

}  // namespace
}  // namespace simmr::obs
