// MetricsHttpServer: the dependency-free /metrics endpoint, exercised
// through a raw TCP client (no HTTP library on either side).
#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

namespace simmr::obs {
namespace {

/// Sends one request string to 127.0.0.1:port and reads until the server
/// closes the connection (every response carries Connection: close).
std::string RawRequest(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent,
                             request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    response.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return response;
}

std::string Get(int port, const std::string& path) {
  return RawRequest(port, "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

MetricsHttpServer::ProgressFn StaticProgress() {
  return [] {
    LiveProgress p;
    p.sessions_completed = 3;
    p.sessions_total = 10;
    p.events_processed = 1234;
    p.wall_seconds = 1.5;
    p.eta_seconds = 3.5;
    return p;
  };
}

TEST(MetricsHttpServer, PortZeroPicksAFreePort) {
  MetricsHttpServer server([] { return std::string("m 1\n"); },
                           StaticProgress());
  const int port = server.Start();
  EXPECT_GT(port, 0);
  EXPECT_EQ(port, server.port());
  server.Stop();
}

TEST(MetricsHttpServer, ServesMetricsTextWithPrometheusContentType) {
  MetricsHttpServer server(
      [] { return std::string("# TYPE t counter\nt 42\n"); },
      StaticProgress());
  const int port = server.Start();
  const std::string response = Get(port, "/metrics");
  server.Stop();
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("# TYPE t counter\nt 42\n"), std::string::npos);
}

TEST(MetricsHttpServer, HealthzAndProgress) {
  MetricsHttpServer server([] { return std::string(""); }, StaticProgress());
  const int port = server.Start();
  const std::string health = Get(port, "/healthz");
  const std::string progress = Get(port, "/progress");
  server.Stop();
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);
  EXPECT_NE(progress.find("application/json"), std::string::npos);
  EXPECT_NE(progress.find("\"schema\":\"simmr.progress.v1\""),
            std::string::npos);
  EXPECT_NE(progress.find("\"sessions_completed\":3"), std::string::npos);
  EXPECT_NE(progress.find("\"sessions_total\":10"), std::string::npos);
  EXPECT_NE(progress.find("\"events_processed\":1234"), std::string::npos);
  EXPECT_NE(progress.find("\"eta_seconds\":3.5"), std::string::npos);
}

TEST(MetricsHttpServer, UnknownEtaSerializesAsNull) {
  MetricsHttpServer server([] { return std::string(""); }, [] {
    LiveProgress p;  // eta_seconds stays -1: no sessions finished yet
    return p;
  });
  const int port = server.Start();
  const std::string progress = Get(port, "/progress");
  server.Stop();
  EXPECT_NE(progress.find("\"eta_seconds\":null"), std::string::npos);
}

TEST(MetricsHttpServer, UnknownPathIs404AndBadMethodIs405) {
  MetricsHttpServer server([] { return std::string(""); }, StaticProgress());
  const int port = server.Start();
  const std::string missing = Get(port, "/nope");
  const std::string post =
      RawRequest(port, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  server.Stop();
  EXPECT_NE(missing.find("404"), std::string::npos);
  EXPECT_NE(post.find("405"), std::string::npos);
}

TEST(MetricsHttpServer, QueryStringsAreStripped) {
  MetricsHttpServer server([] { return std::string("x 1\n"); },
                           StaticProgress());
  const int port = server.Start();
  const std::string response = Get(port, "/metrics?format=text");
  server.Stop();
  EXPECT_NE(response.find("200 OK"), std::string::npos);
}

TEST(MetricsHttpServer, LiveTextFnSeesCurrentState) {
  int value = 0;
  MetricsHttpServer server(
      [&value] { return "v " + std::to_string(value) + "\n"; },
      StaticProgress());
  const int port = server.Start();
  value = 7;
  const std::string response = Get(port, "/metrics");
  EXPECT_NE(response.find("v 7"), std::string::npos);
  EXPECT_GE(server.requests_served(), 1u);
  server.Stop();
}

TEST(MetricsHttpServer, MalformedRequestLinesGet400) {
  MetricsHttpServer server([] { return std::string("m 1\n"); },
                           StaticProgress());
  const int port = server.Start();
  // No spaces at all; missing target; missing HTTP version; a version
  // token that is not HTTP/; a leading space. A space inside a later
  // header line must not rescue any of them.
  const std::string no_spaces = RawRequest(port, "GARBAGE\r\nA: b c\r\n\r\n");
  const std::string no_target = RawRequest(port, "GET \r\nHost: x\r\n\r\n");
  const std::string no_version =
      RawRequest(port, "GET /metrics\r\nHost: x y\r\n\r\n");
  const std::string bad_version =
      RawRequest(port, "GET /metrics JUNK/1.1\r\nHost: x\r\n\r\n");
  const std::string leading_space =
      RawRequest(port, " GET /metrics HTTP/1.1\r\n\r\n");
  server.Stop();
  for (const std::string* r : {&no_spaces, &no_target, &no_version,
                               &bad_version, &leading_space}) {
    EXPECT_NE(r->find("400 Bad Request"), std::string::npos) << *r;
  }
}

TEST(MetricsHttpServer, OversizedHeadGets431) {
  MetricsHttpServer server([] { return std::string("m 1\n"); },
                           StaticProgress());
  const int port = server.Start();
  // A never-terminated request head larger than the 16 KiB cap.
  std::string huge = "GET /metrics HTTP/1.1\r\n";
  huge += "X-Padding: " + std::string(20 * 1024, 'a') + "\r\n";
  const std::string response = RawRequest(port, huge);
  // The server must stay healthy for the next client.
  const std::string after = Get(port, "/healthz");
  server.Stop();
  EXPECT_NE(response.find("431 Request Header Fields Too Large"),
            std::string::npos);
  EXPECT_NE(after.find("200 OK"), std::string::npos);
}

TEST(MetricsHttpServer, ClientDisconnectMidRequestDoesNotWedgeServer) {
  MetricsHttpServer server([] { return std::string("m 1\n"); },
                           StaticProgress());
  const int port = server.Start();
  // Connect, send half a request line, and slam the connection shut.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  (void)!::send(fd, "GET /met", 8, 0);
  ::close(fd);
  // Likewise a client that disappears before reading the response
  // (mid-write disconnect: SendAll must swallow EPIPE, not raise it).
  const int fd2 = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd2, 0);
  ASSERT_EQ(::connect(fd2, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  (void)!::send(fd2, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n", 35, 0);
  ::close(fd2);  // gone before the response is written
  const std::string after = Get(port, "/healthz");
  server.Stop();
  EXPECT_NE(after.find("200 OK"), std::string::npos);
}

TEST(MetricsHttpServer, SlowClientIsCutOffByIoTimeout) {
  MetricsHttpServer::Options opts;
  opts.io_timeout_seconds = 0.2;
  MetricsHttpServer server([] { return std::string("m 1\n"); },
                           StaticProgress(), opts);
  const int port = server.Start();
  // Send an incomplete head and then stall: SO_RCVTIMEO must unblock the
  // serving thread, which answers 400 for the truncated request.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  (void)!::send(fd, "GET /met", 8, 0);
  std::string response;
  char buf[256];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    response.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  const std::string after = Get(port, "/healthz");
  server.Stop();
  EXPECT_NE(response.find("400 Bad Request"), std::string::npos);
  EXPECT_NE(after.find("200 OK"), std::string::npos);
}

TEST(MetricsHttpServer, StopIsIdempotentAndStartAfterStopRejected) {
  MetricsHttpServer server([] { return std::string(""); }, StaticProgress());
  server.Start();
  server.Stop();
  server.Stop();
  SUCCEED();
}

TEST(LockingObserver, CountsDequeuesAndForwards) {
  class Recorder final : public SimObserver {
   public:
    int dequeues = 0;
    void OnEventDequeue(SimTime, const char*, std::size_t) override {
      ++dequeues;
    }
  };
  Recorder inner;
  std::mutex mu;
  std::atomic<std::uint64_t> events{0};
  LockingObserver locked(&inner, &mu, &events);
  locked.OnEventDequeue(1.0, "E", 0);
  locked.OnEventDequeue(2.0, "E", 0);
  EXPECT_EQ(inner.dequeues, 2);
  EXPECT_EQ(events.load(), 2u);
}

}  // namespace
}  // namespace simmr::obs
