// EventLogObserver + simmr.eventlog.v1 format tests: lossless round-trip,
// exact double formatting, kill-path accounting under preemptive MaxEDF,
// job-id offsets and parse-error handling.
#include "obs/event_log.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>

#include "core/simmr.h"
#include "obs/metrics.h"
#include "obs/metrics_observer.h"
#include "sched/fifo.h"
#include "sched/preemptive_maxedf.h"

namespace simmr::obs {
namespace {

trace::JobProfile UniformProfile(int num_maps, int num_reduces) {
  trace::JobProfile p;
  p.app_name = "uniform";
  p.num_maps = num_maps;
  p.num_reduces = num_reduces;
  p.map_durations.assign(num_maps, 10.0);
  p.first_shuffle_durations.assign(1, 3.0);
  if (num_reduces > 1)
    p.typical_shuffle_durations.assign(num_reduces - 1, 5.0);
  p.reduce_durations.assign(num_reduces, 2.0);
  return p;
}

trace::WorkloadTrace SmallWorkload() {
  trace::WorkloadTrace w(2);
  w[0].profile = UniformProfile(6, 2);
  w[0].deadline = 300.0;
  w[1].profile = UniformProfile(4, 2);
  w[1].arrival = 5.0;
  return w;
}

/// Job 0 hoards every reduce slot with fillers; job 1 is urgent and small,
/// so preemptive MaxEDF kills job 0 fillers (same scenario as the
/// scheduler's own preemption tests).
trace::WorkloadTrace HoardingScenario() {
  trace::WorkloadTrace w(2);
  w[0].profile = UniformProfile(64, 4);
  w[0].arrival = 0.0;
  w[0].deadline = 10000.0;
  w[1].profile = UniformProfile(8, 2);
  w[1].arrival = 30.0;
  w[1].deadline = 150.0;
  return w;
}

EventLogObserver RecordRun(const trace::WorkloadTrace& workload,
                           core::SimConfig cfg) {
  EventLogObserver log;
  cfg.observer = &log;
  cfg.record_tasks = true;
  sched::FifoPolicy fifo;
  core::Replay(workload, fifo, cfg);
  return log;
}

TEST(ExactJsonNumber, RoundTripsBitExactly) {
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           -1.0,
                           1.0 / 3.0,
                           0.1,
                           2.0 / 3.0,
                           1e-300,
                           1e300,
                           12345.678901234567,
                           std::nextafter(1.0, 2.0),
                           4503599627370495.5,
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max()};
  for (const double v : values) {
    const std::string text = ExactJsonNumber(v);
    const double parsed = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(std::memcmp(&parsed, &v, sizeof v), 0)
        << "value " << v << " rendered as " << text;
  }
}

TEST(ExactJsonNumber, NonFiniteRendersAsQuotedString) {
  EXPECT_EQ(ExactJsonNumber(std::numeric_limits<double>::quiet_NaN()),
            "\"NaN\"");
  EXPECT_EQ(ExactJsonNumber(std::numeric_limits<double>::infinity()),
            "\"+Inf\"");
  EXPECT_EQ(ExactJsonNumber(-std::numeric_limits<double>::infinity()),
            "\"-Inf\"");
}

TEST(EventLog, RoundTripPreservesEveryEvent) {
  core::SimConfig cfg;
  cfg.map_slots = 3;
  cfg.reduce_slots = 2;
  const EventLogObserver log = RecordRun(SmallWorkload(), cfg);
  ASSERT_GT(log.event_count(), 0u);

  const EventLogHeader header{"test", "small", "simmr"};
  const std::string jsonl = log.ToJsonl(header);
  std::istringstream in(jsonl);
  const EventLog parsed = ParseEventLog(in);

  EXPECT_EQ(parsed.header.tool, "test");
  EXPECT_EQ(parsed.header.scenario, "small");
  EXPECT_EQ(parsed.header.simulator, "simmr");
  ASSERT_EQ(parsed.events.size(), log.events().size());
  for (std::size_t i = 0; i < parsed.events.size(); ++i) {
    EXPECT_EQ(parsed.events[i], log.events()[i]) << "event " << i;
  }
}

TEST(EventLog, SerializationIsAFixedPoint) {
  // serialize(parse(x)) == x: nothing is lost or reformatted on re-emit.
  core::SimConfig cfg;
  cfg.map_slots = 2;
  cfg.reduce_slots = 2;
  const EventLogObserver log = RecordRun(SmallWorkload(), cfg);
  const std::string jsonl = log.ToJsonl({"t", "s", "simmr"});
  std::istringstream in(jsonl);
  const EventLog parsed = ParseEventLog(in);
  EXPECT_EQ(SerializeEventLog(parsed), jsonl);
}

TEST(EventLog, CompletionTimingsSurviveBitExactly) {
  core::SimConfig cfg;
  cfg.map_slots = 3;
  cfg.reduce_slots = 2;
  const EventLogObserver log = RecordRun(SmallWorkload(), cfg);
  const std::string jsonl = log.ToJsonl({"t", "s", "simmr"});
  std::istringstream in(jsonl);
  const EventLog parsed = ParseEventLog(in);

  std::size_t completions = 0;
  for (std::size_t i = 0; i < parsed.events.size(); ++i) {
    const LogEvent& a = log.events()[i];
    const LogEvent& b = parsed.events[i];
    if (a.kind != LogEvent::Kind::kTaskCompletion) continue;
    ++completions;
    // Bit-exact, not approximately equal.
    EXPECT_EQ(std::memcmp(&a.timing.start, &b.timing.start, sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&a.timing.shuffle_end, &b.timing.shuffle_end,
                          sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&a.timing.end, &b.timing.end, sizeof(double)), 0);
  }
  EXPECT_GE(completions, 6u + 2u + 4u + 2u);
}

TEST(EventLog, KillsAreCountedDistinctlyFromCompletions) {
  MetricsRegistry registry;
  MetricsObserver metrics(registry);
  EventLogObserver log;
  MulticastObserver multicast;
  multicast.Add(&metrics);
  multicast.Add(&log);

  core::SimConfig cfg;
  cfg.map_slots = 8;
  cfg.reduce_slots = 4;
  cfg.allow_filler_preemption = true;
  cfg.observer = &multicast;
  sched::PreemptiveMaxEdfPolicy preemptive;
  core::Replay(HoardingScenario(), preemptive, cfg);

  // The urgent job forces filler kills; kills are recorded as failed
  // completions, never as successes.
  EXPECT_GT(log.killed(TaskKind::kReduce), 0u);
  EXPECT_EQ(log.killed(TaskKind::kMap), 0u);
  EXPECT_EQ(log.completed(TaskKind::kMap), 64u + 8u);
  // Killed fillers relaunch later under the same index, so successful
  // reduce completions still total the workload's reduce count.
  EXPECT_EQ(log.completed(TaskKind::kReduce), 4u + 2u);

  // The metrics observer saw the same stream and must agree.
  const std::string text = registry.PrometheusText();
  const std::string failures = "simmr_task_failures_total{kind=\"reduce\"} " +
                               std::to_string(log.killed(TaskKind::kReduce)) +
                               "\n";
  EXPECT_NE(text.find(failures), std::string::npos) << text;
  // simmr_tasks_completed_total counts attempts *finished* (successful or
  // killed); the event log's completed() counts successes only. The two
  // views reconcile through the kill counter.
  const std::string completed = "simmr_tasks_completed_total{kind=\"reduce\"} " +
                                std::to_string(log.completed(TaskKind::kReduce) +
                                               log.killed(TaskKind::kReduce)) +
                                "\n";
  EXPECT_NE(text.find(completed), std::string::npos) << text;

  // And the recorded events themselves carry succeeded=false for exactly
  // the killed attempts.
  std::uint64_t failed_events = 0;
  for (const LogEvent& ev : log.events()) {
    if (ev.kind == LogEvent::Kind::kTaskCompletion && !ev.succeeded)
      ++failed_events;
  }
  EXPECT_EQ(failed_events, log.killed(TaskKind::kReduce));
}

TEST(EventLog, KillPathSurvivesRoundTrip) {
  EventLogObserver log;
  core::SimConfig cfg;
  cfg.map_slots = 8;
  cfg.reduce_slots = 4;
  cfg.allow_filler_preemption = true;
  cfg.observer = &log;
  sched::PreemptiveMaxEdfPolicy preemptive;
  core::Replay(HoardingScenario(), preemptive, cfg);
  ASSERT_GT(log.killed(TaskKind::kReduce), 0u);

  const std::string jsonl = log.ToJsonl({"t", "kill", "simmr"});
  std::istringstream in(jsonl);
  const EventLog parsed = ParseEventLog(in);
  std::uint64_t failed = 0;
  for (const LogEvent& ev : parsed.events) {
    if (ev.kind == LogEvent::Kind::kTaskCompletion && !ev.succeeded) ++failed;
  }
  EXPECT_EQ(failed, log.killed(TaskKind::kReduce));
}

TEST(EventLog, JobIdOffsetShiftsEveryJobScopedEvent) {
  EventLogObserver log;
  log.set_job_id_offset(100);
  core::SimConfig cfg;
  cfg.map_slots = 2;
  cfg.reduce_slots = 2;
  cfg.observer = &log;
  sched::FifoPolicy fifo;
  trace::WorkloadTrace w(1);
  w[0].profile = UniformProfile(2, 1);
  core::Replay(w, fifo, cfg);

  for (const LogEvent& ev : log.events()) {
    switch (ev.kind) {
      case LogEvent::Kind::kJobArrival:
      case LogEvent::Kind::kJobCompletion:
      case LogEvent::Kind::kTaskLaunch:
      case LogEvent::Kind::kPhaseTransition:
      case LogEvent::Kind::kTaskCompletion:
        EXPECT_EQ(ev.job, 100);
        break;
      case LogEvent::Kind::kSchedulerDecision:
        // Idle decisions stay negative; chosen ones are offset.
        if (ev.job >= 0) {
          EXPECT_EQ(ev.job, 100);
        }
        break;
      case LogEvent::Kind::kDequeue:
        break;
      case LogEvent::Kind::kFault:
        if (ev.job >= 0) {
          EXPECT_EQ(ev.job, 100);
        }
        break;
    }
  }
}

TEST(EventLog, ClearDropsEventsAndCounters) {
  core::SimConfig cfg;
  cfg.map_slots = 2;
  cfg.reduce_slots = 2;
  EventLogObserver log = RecordRun(SmallWorkload(), cfg);
  ASSERT_GT(log.event_count(), 0u);
  log.Clear();
  EXPECT_EQ(log.event_count(), 0u);
  EXPECT_EQ(log.completed(TaskKind::kMap), 0u);
  EXPECT_EQ(log.completed(TaskKind::kReduce), 0u);
  EXPECT_EQ(log.killed(TaskKind::kReduce), 0u);
}

TEST(EventLog, DequeueRecordingCanBeDisabled) {
  EventLogObserver::Options options;
  options.record_dequeues = false;
  EventLogObserver log(options);
  core::SimConfig cfg;
  cfg.map_slots = 2;
  cfg.reduce_slots = 2;
  cfg.observer = &log;
  sched::FifoPolicy fifo;
  core::Replay(SmallWorkload(), fifo, cfg);

  ASSERT_GT(log.event_count(), 0u);
  for (const LogEvent& ev : log.events()) {
    EXPECT_NE(ev.kind, LogEvent::Kind::kDequeue);
  }
}

TEST(EventLog, ParseRejectsWrongSchema) {
  std::istringstream in(
      "{\"schema\":\"simmr.telemetry.v1\",\"tool\":\"x\"}\n");
  EXPECT_THROW(ParseEventLog(in), std::runtime_error);
}

TEST(EventLog, ParseRejectsMalformedLine) {
  std::istringstream in(
      "{\"schema\":\"simmr.eventlog.v1\",\"tool\":\"t\",\"scenario\":\"s\","
      "\"simulator\":\"m\"}\n"
      "{\"k\":\"dequeue\",\"t\":not-a-number}\n");
  EXPECT_THROW(ParseEventLog(in), std::runtime_error);
}

TEST(EventLog, ParseRejectsUnknownEventKind) {
  std::istringstream in(
      "{\"schema\":\"simmr.eventlog.v1\",\"tool\":\"t\",\"scenario\":\"s\","
      "\"simulator\":\"m\"}\n"
      "{\"k\":\"teleport\",\"t\":1}\n");
  EXPECT_THROW(ParseEventLog(in), std::runtime_error);
}

TEST(EventLog, EscapedJobNamesRoundTrip) {
  EventLog log;
  log.header = {"tool \"quoted\"", "scenario\nnewline", "simmr"};
  LogEvent ev;
  ev.kind = LogEvent::Kind::kJobArrival;
  ev.t = 1.5;
  ev.job = 0;
  ev.name = "app \"x\"\t\\backslash";
  ev.deadline = 10.0;
  log.events.push_back(ev);

  const std::string jsonl = SerializeEventLog(log);
  std::istringstream in(jsonl);
  const EventLog parsed = ParseEventLog(in);
  EXPECT_EQ(parsed.header.tool, log.header.tool);
  EXPECT_EQ(parsed.header.scenario, log.header.scenario);
  ASSERT_EQ(parsed.events.size(), 1u);
  EXPECT_STREQ(parsed.events[0].name, ev.name);
}

TEST(EventLog, RecordIsTriviallyCopyable) {
  // The recording hot path depends on this: appending an event must be a
  // fixed-size copy, never a string construction.
  static_assert(std::is_trivially_copyable_v<LogEvent>);
}

TEST(LogEventKind, NameParseRoundTripsEveryKind) {
  // The writer's names and the parser's names come from one table; a kind
  // added without a name (or vice versa) fails here.
  const int num_kinds = static_cast<int>(LogEvent::Kind::kSchedulerDecision);
  for (int i = 0; i <= num_kinds; ++i) {
    const auto kind = static_cast<LogEvent::Kind>(i);
    const char* name = LogEventKindName(kind);
    ASSERT_STRNE(name, "?") << "kind " << i;
    const auto parsed = ParseLogEventKind(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, kind) << name;
  }
}

TEST(LogEventKind, UnknownNameParsesToNullopt) {
  EXPECT_FALSE(ParseLogEventKind("").has_value());
  EXPECT_FALSE(ParseLogEventKind("no_such_kind").has_value());
  EXPECT_FALSE(ParseLogEventKind("DEQUEUE").has_value());  // wrong case
}

}  // namespace
}  // namespace simmr::obs
