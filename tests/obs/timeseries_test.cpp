// TimeSeriesSampler: window semantics, per-window accumulators and the
// simmr.timeseries.v1 serialization (the live observability tentpole).
#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.h"

namespace simmr::obs {
namespace {

TimeSeriesHeader Header() {
  TimeSeriesHeader h;
  h.tool = "test";
  h.scenario = "unit";
  h.simulator = "simmr";
  return h;
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

TEST(WindowClock, BoundaryEventClosesPriorWindow) {
  WindowClock clock(10.0);
  EXPECT_DOUBLE_EQ(clock.WindowStart(), 0.0);
  EXPECT_DOUBLE_EQ(clock.WindowEnd(), 10.0);
  EXPECT_FALSE(clock.CrossesBoundary(9.999));
  // Windows are [k*w, (k+1)*w): an event at exactly t=10 belongs to
  // window 1, so it closes window 0 first.
  EXPECT_TRUE(clock.CrossesBoundary(10.0));
  clock.AdvanceOne();
  EXPECT_EQ(clock.index(), 1);
  EXPECT_DOUBLE_EQ(clock.WindowStart(), 10.0);
  EXPECT_FALSE(clock.CrossesBoundary(10.0));
}

TEST(TimeSeriesSampler, RejectsNonPositiveWindow) {
  TimeSeriesSampler::Options opt;
  opt.window_s = 0.0;
  EXPECT_THROW(TimeSeriesSampler{opt}, std::invalid_argument);
  opt.window_s = -1.0;
  EXPECT_THROW(TimeSeriesSampler{opt}, std::invalid_argument);
}

TEST(TimeSeriesSampler, HeaderCarriesSchemaAndProvenance) {
  TimeSeriesSampler::Options opt;
  opt.window_s = 10.0;
  TimeSeriesSampler sampler(opt);
  sampler.OnEventDequeue(1.0, "E", 0);
  sampler.Finish();
  const auto lines = Lines(sampler.ToJsonl(Header()));
  ASSERT_GE(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"schema\":\"simmr.timeseries.v1\""),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"tool\":\"test\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"simulator\":\"simmr\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"window_s\":10"), std::string::npos);
}

TEST(TimeSeriesSampler, EventsLandInTheirWindow) {
  TimeSeriesSampler::Options opt;
  opt.window_s = 10.0;
  TimeSeriesSampler sampler(opt);
  sampler.OnEventDequeue(1.0, "E", 3);
  sampler.OnEventDequeue(5.0, "E", 7);
  // Exactly on the boundary: belongs to window 1, closes window 0.
  sampler.OnEventDequeue(10.0, "E", 2);
  sampler.OnEventDequeue(25.0, "E", 1);
  sampler.Finish();

  ASSERT_EQ(sampler.window_count(), 3u);
  const auto lines = Lines(sampler.ToJsonl(Header()));
  ASSERT_EQ(lines.size(), 4u);  // header + 3 windows
  // Window 0: two events, last queue depth 7.
  EXPECT_NE(lines[1].find("\"window\":0"), std::string::npos);
  EXPECT_NE(lines[1].find("\"events\":2"), std::string::npos);
  EXPECT_NE(lines[1].find("\"queue_depth\":7"), std::string::npos);
  // Window 1: the boundary event only.
  EXPECT_NE(lines[2].find("\"window\":1"), std::string::npos);
  EXPECT_NE(lines[2].find("\"events\":1"), std::string::npos);
  // Final partial window closed by Finish() at the last observed time.
  EXPECT_NE(lines[3].find("\"window\":2"), std::string::npos);
  EXPECT_NE(lines[3].find("\"partial\":true"), std::string::npos);
  EXPECT_NE(lines[3].find("\"t1\":25"), std::string::npos);
}

TEST(TimeSeriesSampler, EmptyInteriorWindowsAreStillEmitted) {
  TimeSeriesSampler::Options opt;
  opt.window_s = 10.0;
  TimeSeriesSampler sampler(opt);
  sampler.OnEventDequeue(1.0, "E", 0);
  sampler.OnEventDequeue(35.0, "E", 0);  // skips windows 1 and 2
  sampler.Finish();
  ASSERT_EQ(sampler.window_count(), 4u);
  const auto lines = Lines(sampler.ToJsonl(Header()));
  EXPECT_NE(lines[2].find("\"events\":0"), std::string::npos);
  EXPECT_NE(lines[3].find("\"events\":0"), std::string::npos);
}

TEST(TimeSeriesSampler, SlotSecondsIntegrateRunningTasks) {
  TimeSeriesSampler::Options opt;
  opt.window_s = 10.0;
  opt.map_slots = 2;
  opt.reduce_slots = 2;
  TimeSeriesSampler sampler(opt);
  // One map runs [0, 5]: 5 slot-seconds of the window's 20 available.
  sampler.OnTaskLaunch(0.0, 0, TaskKind::kMap, 0);
  TaskTiming timing;
  timing.start = 0.0;
  timing.shuffle_end = 0.0;
  timing.end = 5.0;
  sampler.OnTaskCompletion(5.0, 0, TaskKind::kMap, 0, timing, true);
  sampler.OnEventDequeue(10.0, "E", 0);  // close window 0
  sampler.Finish();

  const auto lines = Lines(sampler.ToJsonl(Header()));
  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(lines[1].find("\"map_slot_seconds\":5"), std::string::npos);
  EXPECT_NE(lines[1].find("\"map_utilization\":0.25"), std::string::npos);
  EXPECT_NE(lines[1].find("\"reduce_utilization\":0"), std::string::npos);
  EXPECT_NE(lines[1].find("\"running_maps_max\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"running_maps\":0"), std::string::npos);
}

TEST(TimeSeriesSampler, RunningTasksCarryAcrossWindows) {
  TimeSeriesSampler::Options opt;
  opt.window_s = 10.0;
  opt.map_slots = 1;
  TimeSeriesSampler sampler(opt);
  // A map running [2, 18] spans the boundary: 8 slot-seconds in window
  // 0, 8 in window 1; still running at the window-0 close.
  sampler.OnTaskLaunch(2.0, 0, TaskKind::kMap, 0);
  TaskTiming timing;
  timing.start = 2.0;
  timing.shuffle_end = 2.0;
  timing.end = 18.0;
  sampler.OnTaskCompletion(18.0, 0, TaskKind::kMap, 0, timing, true);
  sampler.Finish();

  const auto lines = Lines(sampler.ToJsonl(Header()));
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[1].find("\"map_slot_seconds\":8"), std::string::npos);
  EXPECT_NE(lines[1].find("\"running_maps\":1"), std::string::npos);
  EXPECT_NE(lines[2].find("\"map_slot_seconds\":8"), std::string::npos);
  EXPECT_NE(lines[2].find("\"running_maps\":0"), std::string::npos);
}

TEST(TimeSeriesSampler, DurationPercentilesArePerWindow) {
  TimeSeriesSampler::Options opt;
  opt.window_s = 100.0;
  TimeSeriesSampler sampler(opt);
  TaskTiming fast;
  fast.start = 0.0;
  fast.end = 1.0;
  // Window 0: short tasks only.
  for (int i = 0; i < 10; ++i)
    sampler.OnTaskCompletion(50.0, 0, TaskKind::kMap, i, fast, true);
  // Window 1: long tasks only — its p50 must not see window 0's.
  TaskTiming slow;
  slow.start = 100.0;
  slow.end = 400.0;
  for (int i = 0; i < 10; ++i)
    sampler.OnTaskCompletion(450.0, 0, TaskKind::kMap, i, slow, true);
  sampler.Finish();

  const auto lines = Lines(sampler.ToJsonl(Header()));
  ASSERT_GE(lines.size(), 3u);
  // Window 0 percentile <= 2s (bucket bound above 1s duration).
  const auto p50_at = lines[1].find("\"map_duration_p50\":");
  ASSERT_NE(p50_at, std::string::npos);
  EXPECT_LE(std::stod(lines[1].substr(lines[1].find(':', p50_at) + 1)), 2.0);
  // Window 1 (index 4 in file order: header, w0, w1(empty at 100..200)...)
  // find the window containing the slow completions.
  std::string slow_window;
  for (const auto& line : lines)
    if (line.find("\"maps_completed\":10") != std::string::npos &&
        line.find("\"window\":0") == std::string::npos)
      slow_window = line;
  ASSERT_FALSE(slow_window.empty());
  const auto slow_p50_at = slow_window.find("\"map_duration_p50\":");
  ASSERT_NE(slow_p50_at, std::string::npos);
  EXPECT_GE(std::stod(slow_window.substr(
                slow_window.find(':', slow_p50_at) + 1)),
            100.0);
  // Windows with no completions omit the percentile fields.
  EXPECT_EQ(lines[2].find("map_duration_p50"), std::string::npos);
}

TEST(TimeSeriesSampler, FailedTasksCountAsFailuresNotDurations) {
  TimeSeriesSampler::Options opt;
  opt.window_s = 10.0;
  TimeSeriesSampler sampler(opt);
  TaskTiming timing;
  timing.start = 0.0;
  timing.end = 3.0;
  sampler.OnTaskLaunch(0.0, 0, TaskKind::kMap, 0);
  sampler.OnTaskCompletion(3.0, 0, TaskKind::kMap, 0, timing, false);
  sampler.Finish();
  const auto lines = Lines(sampler.ToJsonl(Header()));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("\"task_failures\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"maps_completed\":0"), std::string::npos);
  EXPECT_EQ(lines[1].find("map_duration_p50"), std::string::npos);
}

TEST(TimeSeriesSampler, JobCountsTrackArrivalsAndCompletions) {
  TimeSeriesSampler::Options opt;
  opt.window_s = 10.0;
  TimeSeriesSampler sampler(opt);
  sampler.OnJobArrival(1.0, 0, "a", 0.0);
  sampler.OnJobArrival(2.0, 1, "b", 0.0);
  sampler.OnJobCompletion(8.0, 0);
  sampler.OnEventDequeue(15.0, "E", 0);
  sampler.Finish();
  const auto lines = Lines(sampler.ToJsonl(Header()));
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[1].find("\"jobs_arrived\":2"), std::string::npos);
  EXPECT_NE(lines[1].find("\"jobs_completed\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"jobs_active\":1"), std::string::npos);
  // Per-window counts reset; the active count is cumulative.
  EXPECT_NE(lines[2].find("\"jobs_arrived\":0"), std::string::npos);
  EXPECT_NE(lines[2].find("\"jobs_active\":1"), std::string::npos);
}

TEST(TimeSeriesSampler, RegistrySnapshotEmbedsScalars) {
  MetricsRegistry registry;
  auto& counter = registry.AddCounter("test_total", "help");
  auto& gauge = registry.AddGauge("test_gauge", "help", {{"kind", "map"}});
  TimeSeriesSampler::Options opt;
  opt.window_s = 10.0;
  opt.registry = &registry;
  TimeSeriesSampler sampler(opt);
  counter.Increment(3);
  gauge.Set(1.5);
  sampler.OnEventDequeue(12.0, "E", 0);
  sampler.Finish();
  const auto lines = Lines(sampler.ToJsonl(Header()));
  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(lines[1].find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(lines[1].find("\"test_total\":3"), std::string::npos);
  EXPECT_NE(lines[1].find("\"test_gauge{kind=\\\"map\\\"}\":1.5"),
            std::string::npos);
}

TEST(TimeSeriesSampler, FinishIsIdempotentAndEmptyRunWritesHeaderOnly) {
  TimeSeriesSampler::Options opt;
  opt.window_s = 10.0;
  TimeSeriesSampler sampler(opt);
  sampler.Finish();
  sampler.Finish();
  EXPECT_EQ(sampler.window_count(), 0u);
  const auto lines = Lines(sampler.ToJsonl(Header()));
  EXPECT_EQ(lines.size(), 1u);
}

TEST(TimeSeriesSampler, WriteFileRoundTrips) {
  TimeSeriesSampler::Options opt;
  opt.window_s = 10.0;
  TimeSeriesSampler sampler(opt);
  sampler.OnEventDequeue(5.0, "E", 1);
  const std::string path =
      testing::TempDir() + "/timeseries_test_roundtrip.jsonl";
  sampler.WriteFile(path, Header());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_NE(first.find("simmr.timeseries.v1"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace simmr::obs
