#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <stdexcept>

namespace simmr::obs {
namespace {

TEST(Counter, IncrementsMonotonically) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  EXPECT_EQ(c.Value(), 1u);
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.Value(), 3.5);
  g.Add(-1.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.0);
}

TEST(Histogram, BucketsByUpperBoundInclusive) {
  MetricsRegistry r;
  Histogram& h = r.AddHistogram("h", "help", {1.0, 2.0, 4.0});
  h.Observe(0.5);   // <= 1
  h.Observe(1.0);   // <= 1 (bounds are inclusive, Prometheus `le`)
  h.Observe(1.5);   // <= 2
  h.Observe(4.0);   // <= 4
  h.Observe(100.0); // +Inf
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.TotalCount(), 5u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
}

TEST(MetricsRegistry, RejectsBadRegistrations) {
  MetricsRegistry r;
  EXPECT_THROW(r.AddCounter("", "no name"), std::invalid_argument);
  r.AddCounter("c", "help");
  // Same identity twice.
  EXPECT_THROW(r.AddCounter("c", "help"), std::invalid_argument);
  // Same name, different type.
  EXPECT_THROW(r.AddGauge("c", "help"), std::invalid_argument);
  // Same name, different labels: fine.
  EXPECT_NO_THROW(r.AddCounter("c", "help", {{"kind", "map"}}));
  // Histogram bound validation.
  EXPECT_THROW(r.AddHistogram("h", "help", {}), std::invalid_argument);
  EXPECT_THROW(r.AddHistogram("h", "help", {1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(r.AddHistogram("h", "help", {2.0, 1.0}),
               std::invalid_argument);
}

TEST(MetricsRegistry, HandlesStayValidAsRegistryGrows) {
  MetricsRegistry r;
  Counter& first = r.AddCounter("first", "help");
  for (int i = 0; i < 100; ++i)
    r.AddCounter("c" + std::to_string(i), "help");
  first.Increment();
  EXPECT_EQ(first.Value(), 1u);
}

TEST(MetricsRegistry, PrometheusTextGolden) {
  MetricsRegistry r;
  Counter& jobs = r.AddCounter("jobs_total", "Jobs seen.");
  jobs.Increment(3);
  Gauge& depth = r.AddGauge("depth", "Queue depth.");
  depth.Set(3.5);
  Histogram& dur = r.AddHistogram("dur", "Durations.", {1.0, 2.0});
  dur.Observe(0.5);
  dur.Observe(1.5);
  dur.Observe(10.0);

  EXPECT_EQ(r.PrometheusText(),
            "# HELP jobs_total Jobs seen.\n"
            "# TYPE jobs_total counter\n"
            "jobs_total 3\n"
            "# HELP depth Queue depth.\n"
            "# TYPE depth gauge\n"
            "depth 3.5\n"
            "# HELP dur Durations.\n"
            "# TYPE dur histogram\n"
            "dur_bucket{le=\"1\"} 1\n"
            "dur_bucket{le=\"2\"} 2\n"
            "dur_bucket{le=\"+Inf\"} 3\n"
            "dur_sum 12\n"
            "dur_count 3\n");
}

TEST(MetricsRegistry, PrometheusEmitsOneHelpBlockPerFamily) {
  MetricsRegistry r;
  r.AddCounter("tasks_total", "Tasks.", {{"kind", "map"}}).Increment(4);
  r.AddCounter("tasks_total", "Tasks.", {{"kind", "reduce"}}).Increment(2);

  EXPECT_EQ(r.PrometheusText(),
            "# HELP tasks_total Tasks.\n"
            "# TYPE tasks_total counter\n"
            "tasks_total{kind=\"map\"} 4\n"
            "tasks_total{kind=\"reduce\"} 2\n");
}

TEST(MetricsRegistry, JsonGolden) {
  MetricsRegistry r;
  r.AddCounter("c", "help", {{"kind", "map"}}).Increment(7);
  r.AddGauge("g", "help").Set(2.5);
  Histogram& h = r.AddHistogram("h", "help", {1.0});
  h.Observe(0.5);
  h.Observe(3.0);

  EXPECT_EQ(r.Json(),
            "{\"schema\":\"simmr.metrics.v1\",\"metrics\":["
            "{\"name\":\"c\",\"labels\":{\"kind\":\"map\"},"
            "\"type\":\"counter\",\"value\":7},"
            "{\"name\":\"g\",\"labels\":{},\"type\":\"gauge\",\"value\":2.5},"
            "{\"name\":\"h\",\"labels\":{},\"type\":\"histogram\","
            "\"buckets\":[{\"le\":1,\"count\":1},"
            "{\"le\":\"+Inf\",\"count\":2}],\"sum\":3.5,\"count\":2}"
            "]}");
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  Histogram h({1.0, 2.0, 4.0});
  for (int i = 0; i < 10; ++i) h.Observe(1.5);  // all in (1, 2]
  // Rank q*10 inside the (1, 2] bucket: linear interpolation.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1.5);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 2.0);
}

TEST(Histogram, QuantileClampsOverflowToLastBound) {
  Histogram h({1.0, 2.0});
  h.Observe(100.0);
  h.Observe(200.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 2.0);
}

TEST(Histogram, QuantileOfEmptyHistogramIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(Histogram, WindowedQuantilesOnlySeePostCheckpointValues) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 100; ++i) h.Observe(0.5);
  h.Checkpoint();
  EXPECT_EQ(h.WindowCount(), 0u);
  EXPECT_DOUBLE_EQ(h.WindowQuantile(0.5), 0.0);
  for (int i = 0; i < 10; ++i) h.Observe(3.0);  // (2, 4] only
  EXPECT_EQ(h.WindowCount(), 10u);
  EXPECT_DOUBLE_EQ(h.WindowSum(), 30.0);
  // The window's median is in (2, 4] even though the run median is 0.5.
  EXPECT_GT(h.WindowQuantile(0.5), 2.0);
  EXPECT_LE(h.WindowQuantile(0.5), 4.0);
  EXPECT_LT(h.Quantile(0.5), 1.0);
  // A fresh checkpoint resets the view again.
  h.Checkpoint();
  EXPECT_EQ(h.WindowCount(), 0u);
  EXPECT_DOUBLE_EQ(h.WindowSum(), 0.0);
}

TEST(Histogram, ExpositionUnaffectedByCheckpoints) {
  Histogram h({1.0});
  h.Observe(0.5);
  h.Checkpoint();
  h.Observe(0.5);
  EXPECT_EQ(h.TotalCount(), 2u);
  EXPECT_DOUBLE_EQ(h.Sum(), 1.0);
}

// The exposition edge cases the Prometheus text format mandates: label
// values escape backslash, double-quote and newline; HELP text escapes
// backslash and newline; histogram buckets are cumulative and end with
// +Inf; every family gets exactly one # TYPE line. Locked as an exact
// golden so a formatting regression is a diff, not a scrape error.
TEST(MetricsRegistry, PrometheusTextEscapingGolden) {
  MetricsRegistry r;
  r.AddCounter("odd_total", "Help with \\ backslash\nand newline.",
               {{"path", "C:\\dir\n\"quoted\""}})
      .Increment(1);
  Histogram& h = r.AddHistogram("lat", "Latency.", {0.5, 1.0, 2.0});
  h.Observe(0.25);
  h.Observe(0.75);
  h.Observe(0.75);
  h.Observe(9.0);

  EXPECT_EQ(r.PrometheusText(),
            "# HELP odd_total Help with \\\\ backslash\\nand newline.\n"
            "# TYPE odd_total counter\n"
            "odd_total{path=\"C:\\\\dir\\n\\\"quoted\\\"\"} 1\n"
            "# HELP lat Latency.\n"
            "# TYPE lat histogram\n"
            "lat_bucket{le=\"0.5\"} 1\n"
            "lat_bucket{le=\"1\"} 3\n"
            "lat_bucket{le=\"2\"} 3\n"
            "lat_bucket{le=\"+Inf\"} 4\n"
            "lat_sum 10.75\n"
            "lat_count 4\n");
}

TEST(MetricsRegistry, ScalarSnapshotCoversCountersAndGauges) {
  MetricsRegistry r;
  r.AddCounter("c_total", "help").Increment(5);
  r.AddGauge("g", "help", {{"kind", "map"}}).Set(2.5);
  r.AddHistogram("h", "help", {1.0}).Observe(0.5);  // skipped

  const auto snapshot = r.ScalarSnapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].key, "c_total");
  EXPECT_DOUBLE_EQ(snapshot[0].value, 5.0);
  EXPECT_EQ(snapshot[1].key, "g{kind=\"map\"}");
  EXPECT_DOUBLE_EQ(snapshot[1].value, 2.5);
}

TEST(MetricsRegistry, WriteFileRoundTrips) {
  MetricsRegistry r;
  r.AddCounter("c", "help").Increment();
  const std::string path = ::testing::TempDir() + "/metrics_test_out.txt";
  r.WriteFile(path, /*as_json=*/false);
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, r.PrometheusText());
  EXPECT_THROW(r.WriteFile("/no/such/dir/metrics.txt", false),
               std::runtime_error);
}

}  // namespace
}  // namespace simmr::obs
