#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>

namespace simmr::obs {
namespace {

TEST(RunTelemetry, MakeDerivesEventsPerSecondAndRss) {
  const RunTelemetry t = MakeRunTelemetry("simmr_replay", "policy=fifo",
                                          /*wall_seconds=*/2.0,
                                          /*events=*/1000, /*jobs=*/5,
                                          /*makespan_s=*/123.5,
                                          /*peak_queue_depth=*/17);
  EXPECT_EQ(t.tool, "simmr_replay");
  EXPECT_EQ(t.scenario, "policy=fifo");
  EXPECT_DOUBLE_EQ(t.events_per_second, 500.0);
  EXPECT_EQ(t.peak_queue_depth, 17u);
  EXPECT_EQ(t.jobs, 5u);
  EXPECT_DOUBLE_EQ(t.makespan_s, 123.5);
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(t.max_rss_kb, 0);
#endif
}

TEST(RunTelemetry, ZeroWallTimeYieldsZeroRate) {
  const RunTelemetry t =
      MakeRunTelemetry("t", "s", /*wall_seconds=*/0.0, /*events=*/1000,
                       /*jobs=*/1, /*makespan_s=*/0.0);
  EXPECT_DOUBLE_EQ(t.events_per_second, 0.0);
}

TEST(RunTelemetry, ToJsonGolden) {
  RunTelemetry t;
  t.tool = "bench_throughput";
  t.scenario = "jobs=50 \"quoted\"";
  t.wall_seconds = 0.25;
  t.events_processed = 4000;
  t.events_per_second = 16000.0;
  t.peak_queue_depth = 9;
  t.jobs = 50;
  t.makespan_s = 1234.5;
  t.max_rss_kb = 2048;
  EXPECT_EQ(t.ToJson(),
            "{\"schema\":\"simmr.telemetry.v1\","
            "\"tool\":\"bench_throughput\","
            "\"scenario\":\"jobs=50 \\\"quoted\\\"\","
            "\"wall_seconds\":0.25,\"wall_ms\":250,"
            "\"events_processed\":4000,\"events_per_second\":16000,"
            "\"peak_queue_depth\":9,\"jobs\":50,\"makespan_s\":1234.5,"
            "\"max_rss_kb\":2048}");
}

TEST(RunTelemetry, WriteFileAppendsNewline) {
  RunTelemetry t;
  t.tool = "x";
  const std::string path = ::testing::TempDir() + "/telemetry_test_out.json";
  WriteTelemetryFile(path, t);
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, t.ToJson() + "\n");
  EXPECT_THROW(WriteTelemetryFile("/no/such/dir/t.json", t),
               std::runtime_error);
}

TEST(RunTelemetry, QueryMaxRssIsPositiveOnUnix) {
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(QueryMaxRssKb(), 0);
#else
  EXPECT_EQ(QueryMaxRssKb(), -1);
#endif
}

}  // namespace
}  // namespace simmr::obs
