// Cross-simulator contract tests: callbacks fire in event-time order, the
// multicast fan-out preserves that stream, and the standard metric set
// agrees with the simulators' own result counters.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "cluster/app_model.h"
#include "cluster/cluster_sim.h"
#include "core/simmr.h"
#include "mumak/mumak_sim.h"
#include "obs/metrics.h"
#include "obs/metrics_observer.h"
#include "obs/observer.h"
#include "sched/fifo.h"

namespace simmr::obs {
namespace {

/// Records every callback as (now, kind-tag) and tracks whether `now` ever
/// went backwards.
class RecordingObserver final : public SimObserver {
 public:
  struct Call {
    double now;
    std::string what;
  };

  std::vector<Call> calls;
  bool ordered = true;

  int dequeues = 0;
  int arrivals = 0;
  int job_completions = 0;
  int launches = 0;
  int phase_transitions = 0;
  int completions = 0;
  int decisions = 0;

  void OnEventDequeue(SimTime now, const char* type, std::size_t) override {
    Note(now, std::string("dequeue:") + type);
    ++dequeues;
  }
  void OnJobArrival(SimTime now, std::int32_t, std::string_view,
                    double) override {
    Note(now, "arrival");
    ++arrivals;
  }
  void OnJobCompletion(SimTime now, std::int32_t) override {
    Note(now, "job_done");
    ++job_completions;
  }
  void OnTaskLaunch(SimTime now, std::int32_t, TaskKind,
                    std::int32_t) override {
    Note(now, "launch");
    ++launches;
  }
  void OnTaskPhaseTransition(SimTime now, std::int32_t, TaskKind,
                             std::int32_t, const char*) override {
    Note(now, "phase");
    ++phase_transitions;
  }
  void OnTaskCompletion(SimTime now, std::int32_t, TaskKind, std::int32_t,
                        const TaskTiming&, bool) override {
    Note(now, "task_done");
    ++completions;
  }
  void OnSchedulerDecision(SimTime now, TaskKind, std::int32_t) override {
    Note(now, "decision");
    ++decisions;
  }

 private:
  void Note(double now, std::string what) {
    if (now + 1e-9 < last_) ordered = false;
    last_ = std::max(last_, now);
    calls.push_back({now, std::move(what)});
  }

  double last_ = -std::numeric_limits<double>::infinity();
};

trace::WorkloadTrace EngineWorkload() {
  trace::JobProfile p;
  p.app_name = "uniform";
  p.num_maps = 6;
  p.num_reduces = 2;
  p.map_durations.assign(6, 10.0);
  p.first_shuffle_durations.assign(2, 3.0);
  p.reduce_durations.assign(2, 2.0);
  trace::WorkloadTrace w(2);
  w[0].profile = p;
  w[1].profile = p;
  w[1].arrival = 5.0;
  return w;
}

TEST(ObserverOrder, EngineCallbacksAreTimeOrdered) {
  RecordingObserver rec;
  core::SimConfig cfg;
  cfg.map_slots = 2;
  cfg.reduce_slots = 2;
  cfg.observer = &rec;
  sched::FifoPolicy fifo;
  const auto result = core::Replay(EngineWorkload(), fifo, cfg);

  EXPECT_TRUE(rec.ordered);
  EXPECT_EQ(rec.arrivals, 2);
  EXPECT_EQ(rec.job_completions, 2);
  // Every launch eventually completes (fillers are relaunched under the
  // same index and reported once at departure).
  EXPECT_EQ(rec.launches, rec.completions);
  EXPECT_GE(rec.launches, 2 * (6 + 2));
  EXPECT_GT(rec.decisions, 0);
  // The engine drains its queue, so dequeues == pushes.
  EXPECT_EQ(static_cast<std::uint64_t>(rec.dequeues),
            result.events_processed);
}

TEST(ObserverOrder, TestbedCallbacksAreTimeOrdered) {
  cluster::JobSpec spec;
  spec.app = cluster::apps::WordCount();
  spec.dataset_label = "test";
  spec.input_mb = 8 * 64.0;
  spec.num_reduces = 4;
  const std::vector<cluster::SubmittedJob> jobs{{spec, 0.0, 0.0},
                                                {spec, 30.0, 0.0}};
  RecordingObserver rec;
  cluster::TestbedOptions opts;
  opts.config.num_nodes = 4;
  opts.seed = 7;
  opts.observer = &rec;
  const auto result = cluster::RunTestbed(jobs, opts);

  EXPECT_TRUE(rec.ordered);
  EXPECT_EQ(rec.arrivals, 2);
  EXPECT_EQ(rec.job_completions, 2);
  EXPECT_GE(rec.launches, 2 * (8 + 4));
  EXPECT_EQ(rec.launches, rec.completions);
  // Reduces report entering merge+reduce when their fetches complete.
  EXPECT_GT(rec.phase_transitions, 0);
  EXPECT_GT(rec.dequeues, 0);
}

TEST(ObserverOrder, MumakCallbacksAreTimeOrdered) {
  trace::JobProfile p;
  p.app_name = "uniform";
  p.num_maps = 8;
  p.num_reduces = 2;
  p.map_durations.assign(8, 10.0);
  p.typical_shuffle_durations.assign(2, 5.0);
  p.reduce_durations.assign(2, 2.0);
  const auto trace = mumak::RumenTrace::FromProfiles({p}, {0.0});

  RecordingObserver rec;
  mumak::MumakConfig cfg;
  cfg.num_nodes = 4;
  cfg.observer = &rec;
  const auto result = mumak::RunMumak(trace, cfg);

  EXPECT_TRUE(rec.ordered);
  EXPECT_EQ(rec.arrivals, 1);
  EXPECT_EQ(rec.job_completions, 1);
  EXPECT_EQ(rec.launches, 8 + 2);
  EXPECT_EQ(rec.completions, 8 + 2);
  // Reduces launched before all maps finished report the phase boundary.
  EXPECT_GT(rec.phase_transitions, 0);
  EXPECT_GT(rec.dequeues, 0);
  EXPECT_GT(result.makespan, 0.0);
}

TEST(ObserverOrder, MulticastForwardsToEverySinkInOrder) {
  RecordingObserver a, b;
  MulticastObserver multicast;
  multicast.Add(&a);
  multicast.Add(nullptr);  // ignored
  multicast.Add(&b);
  EXPECT_FALSE(multicast.Empty());

  core::SimConfig cfg;
  cfg.map_slots = 2;
  cfg.reduce_slots = 2;
  cfg.observer = &multicast;
  sched::FifoPolicy fifo;
  core::Replay(EngineWorkload(), fifo, cfg);

  ASSERT_EQ(a.calls.size(), b.calls.size());
  ASSERT_GT(a.calls.size(), 0u);
  for (std::size_t i = 0; i < a.calls.size(); ++i) {
    EXPECT_EQ(a.calls[i].now, b.calls[i].now);
    EXPECT_EQ(a.calls[i].what, b.calls[i].what);
  }
}

TEST(ObserverOrder, MetricsObserverAgreesWithEngineResult) {
  MetricsRegistry registry;
  MetricsObserver metrics(registry);
  core::SimConfig cfg;
  cfg.map_slots = 2;
  cfg.reduce_slots = 2;
  cfg.observer = &metrics;
  sched::FifoPolicy fifo;
  const auto result = core::Replay(EngineWorkload(), fifo, cfg);

  EXPECT_EQ(metrics.events_dequeued(), result.events_processed);
  EXPECT_GT(metrics.peak_queue_depth(), 0u);

  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("simmr_jobs_arrived_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("simmr_jobs_completed_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("simmr_tasks_completed_total{kind=\"map\"} 12\n"),
            std::string::npos);
  // All slots released by the end of the run.
  EXPECT_NE(text.find("simmr_slots_busy{kind=\"map\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("simmr_slots_busy{kind=\"reduce\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("simmr_events_dequeued_total"), std::string::npos);
}

}  // namespace
}  // namespace simmr::obs
