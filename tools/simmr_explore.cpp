// simmr_explore: stateless model checker for scheduler interleavings.
//
// The fuzzer (simmr_fuzz) samples schedules randomly; this tool enumerates
// them. Each testbed scenario's nondeterministic choice points — heartbeat
// arrival order among task trackers, tie-broken completions at equal
// sim-time — are resolved by a controllable ScheduleOracle, and the
// explorer walks the choice tree depth-first with sleep-set (DPOR-style)
// pruning up to --depth, resolving deeper choice points with a seeded
// random tail. Every execution runs under the causal-mode invariant
// observer plus the check::PolicyProperties suite; a violation is
// ddmin-shrunk to a minimal schedule and written as a replayable
// simmr.repro.v1 file with an exploration trailer (.xrepro).
//
// Modes:
//   simmr_explore --scenario=pair --depth=64        # exhaustive exploration
//   simmr_explore --replay=tests/corpus/foo.xrepro  # corpus regression
//   simmr_explore --self-test                       # prove every property
//                                                   # detector + the shrinker
//                                                   # work end-to-end
//
// Exit codes: 0 = clean, 1 = usage/runtime error, 2 = violation found
// (explore), regression (replay), or detector failure (self-test).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/invariant_observer.h"
#include "check/policy_properties.h"
#include "cluster/cluster_sim.h"
#include "mc/explore_repro.h"
#include "mc/explorer.h"
#include "mc/oracles.h"
#include "mc/scenario.h"
#include "obs/json.h"
#include "tool_common.h"

namespace {

using namespace simmr;

using tools::ResolveSeed;

std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// True when `outcome` violates `property`.
bool Violates(const mc::RunOutcome& outcome, const std::string& property) {
  for (const check::Violation& violation : outcome.violations)
    if (violation.invariant == property) return true;
  return false;
}

void ValidateFault(const std::string& fault) {
  for (const char* known : {"", "invariants", "capacity", "edf", "replay"})
    if (fault == known) return;
  throw std::invalid_argument(
      "flag --fault: unknown fault '" + fault +
      "' (want invariants | capacity | edf | replay)");
}

mc::ExploreOptions OptionsFrom(const tools::Flags& flags) {
  mc::ExploreOptions options;
  options.max_depth = flags.GetInt("depth");
  const int budget = flags.GetInt("budget");
  if (budget < 0)
    throw std::invalid_argument("flag --budget: must be >= 0");
  options.budget = static_cast<std::uint64_t>(budget);
  options.seed = ResolveSeed(flags.Get("seed"));
  const int random = flags.GetInt("random");
  if (random < 0)
    throw std::invalid_argument("flag --random: must be >= 0");
  options.random_executions = static_cast<std::uint64_t>(random);
  options.prune = !flags.GetBool("no-prune");
  options.threads = static_cast<unsigned>(tools::ResolveThreads(flags));
  options.properties = SplitList(flags.Get("property"));
  options.fault = flags.Get("fault");
  ValidateFault(options.fault);
  return options;
}

/// The property names the exploration actually checked (the resolved form
/// of an empty --property).
std::vector<std::string> ResolvedProperties(const mc::ExploreOptions& options) {
  if (!options.properties.empty()) return options.properties;
  std::vector<std::string> all{"invariants"};
  for (const std::string& name : check::PolicyPropertyNames())
    all.push_back(name);
  return all;
}

std::string HexFingerprint(std::uint64_t fingerprint) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

std::string ScheduleJson(const mc::Schedule& schedule) {
  std::string out = "[";
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(schedule[i]);
  }
  return out + "]";
}

/// The simmr.explore.v1 document. Deliberately excludes wall-clock time
/// and the thread count: the document must be bit-identical for a given
/// (scenario, seed, depth, budget) whatever machine or -j value produced
/// it — that determinism is gated by a ctest.
void WriteExploreJson(const std::string& path, const mc::Scenario& scenario,
                      const mc::ExploreOptions& options,
                      const mc::ExploreResult& result) {
  const mc::ExploreStats& s = result.stats;
  std::string out;
  out += "{\n  \"format_version\": \"simmr.explore.v1\",\n";
  out += "  \"tool\": \"simmr_explore\",\n";
  out += "  \"scenario\": \"" + obs::JsonEscape(scenario.name) + "\",\n";
  out += "  \"options\": {\"depth\": " + std::to_string(options.max_depth);
  out += ", \"budget\": " + std::to_string(options.budget);
  out += ", \"seed\": " + std::to_string(options.seed);
  out += ", \"random_executions\": " +
         std::to_string(options.random_executions);
  out += std::string(", \"prune\": ") + (options.prune ? "true" : "false");
  out += ", \"fault\": \"" + obs::JsonEscape(options.fault) + "\"";
  out += ", \"properties\": [";
  const std::vector<std::string> properties = ResolvedProperties(options);
  for (std::size_t i = 0; i < properties.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + obs::JsonEscape(properties[i]) + "\"";
  }
  out += "]},\n";
  out += "  \"stats\": {\"executions\": " + std::to_string(s.executions);
  out += ", \"dfs_executions\": " + std::to_string(s.dfs_executions);
  out += ", \"random_executions\": " + std::to_string(s.random_executions);
  out += ", \"choice_points\": " + std::to_string(s.choice_points);
  out += ", \"transitions_explored\": " +
         std::to_string(s.transitions_explored);
  out += ", \"transitions_pruned\": " + std::to_string(s.transitions_pruned);
  out += ", \"sleep_blocked\": " + std::to_string(s.sleep_blocked);
  out += ", \"frontier_high_water\": " +
         std::to_string(s.frontier_high_water);
  out += ", \"deepest_tie\": " + std::to_string(s.deepest_tie);
  out += ", \"distinct_terminals\": " + std::to_string(s.distinct_terminals);
  out += std::string(", \"exhausted\": ") +
         (s.exhausted ? "true" : "false") + "},\n";
  out += "  \"fingerprints\": [";
  for (std::size_t i = 0; i < result.fingerprints.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + HexFingerprint(result.fingerprints[i]) + "\"";
  }
  out += "],\n  \"violations\": [";
  for (std::size_t i = 0; i < result.violations.size(); ++i) {
    const mc::ExploreViolation& v = result.violations[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"property\": \"" + obs::JsonEscape(v.property) + "\"";
    out += ", \"detail\": \"" + obs::JsonEscape(v.detail) + "\"";
    out += ", \"fingerprint\": \"" + HexFingerprint(v.fingerprint) + "\"";
    out += ", \"schedule\": " + ScheduleJson(v.schedule);
    out += ", \"shrunk\": " + ScheduleJson(v.shrunk);
    out += ", \"shrink_probes\": " + std::to_string(v.shrink_probes) + "}";
  }
  out += result.violations.empty() ? "]\n}\n" : "\n  ]\n}\n";

  std::ofstream file(path);
  if (!file) throw std::runtime_error("simmr_explore: cannot open " + path);
  file << out;
  file.flush();
  if (!file)
    throw std::runtime_error("simmr_explore: write failed for " + path);
  std::printf("exploration summary written to %s\n", path.c_str());
}

/// Everything written when a violation is found: the .xrepro artifact and
/// the violating interleaving's testbed history log.
std::string WriteViolationArtifacts(const mc::Scenario& scenario,
                                    const mc::ExploreViolation& violation,
                                    const mc::ExploreOptions& options,
                                    const std::string& out_dir) {
  std::filesystem::create_directories(out_dir);
  const std::string stem =
      "explore-" + scenario.name + "-" + violation.property;
  const std::string repro_path = out_dir + "/" + stem + ".xrepro";
  const mc::ExploreReproducer repro =
      mc::MakeExploreReproducer(scenario, violation, options);
  mc::WriteExploreReproducerFile(repro_path, repro);
  std::printf("reproducer written to %s\n", repro_path.c_str());

  const std::string log_path = out_dir + "/" + stem + ".history.log";
  const mc::RunOutcome outcome =
      mc::RunSchedule(scenario, violation.shrunk, options);
  std::ofstream log_file(log_path);
  if (log_file) {
    outcome.result.log.Write(log_file);
    std::printf("history log written to %s\n", log_path.c_str());
  }
  return repro_path;
}

void PrintStats(const mc::ExploreStats& s) {
  std::printf("explore: %llu executions (dfs %llu, random %llu), %s\n",
              static_cast<unsigned long long>(s.executions),
              static_cast<unsigned long long>(s.dfs_executions),
              static_cast<unsigned long long>(s.random_executions),
              s.exhausted ? "exhausted" : "budget reached");
  std::printf(
      "explore: %llu choice points (widest tie %llu), frontier high water "
      "%llu\n",
      static_cast<unsigned long long>(s.choice_points),
      static_cast<unsigned long long>(s.deepest_tie),
      static_cast<unsigned long long>(s.frontier_high_water));
  std::printf(
      "explore: transitions %llu explored, %llu pruned, %llu forced "
      "sleep-blocked picks\n",
      static_cast<unsigned long long>(s.transitions_explored),
      static_cast<unsigned long long>(s.transitions_pruned),
      static_cast<unsigned long long>(s.sleep_blocked));
  std::printf("explore: %llu distinct terminal states\n",
              static_cast<unsigned long long>(s.distinct_terminals));
}

/// The default exploration mode. The shared observability sinks listen in
/// on one representative execution (the default schedule) after the
/// exploration — the exploration itself must stay observer-free so its
/// outcome is identical with and without --trace-out and friends.
int RunExplore(const tools::Flags& flags, tools::ObservabilitySinks& sinks) {
  const mc::Scenario scenario = mc::MakeScenario(flags.Get("scenario"));
  const mc::ExploreOptions options = OptionsFrom(flags);
  std::printf("explore: scenario %s seed %llu depth %d budget %llu prune %s\n",
              scenario.name.c_str(),
              static_cast<unsigned long long>(options.seed),
              options.max_depth,
              static_cast<unsigned long long>(options.budget),
              options.prune ? "on" : "off");

  const mc::ExploreResult result = mc::Explore(scenario, options);
  PrintStats(result.stats);

  for (const mc::ExploreViolation& violation : result.violations) {
    std::fprintf(stderr, "explore: VIOLATION [%s] %s\n",
                 violation.property.c_str(), violation.detail.c_str());
    std::fprintf(stderr,
                 "explore:   schedule %zu picks, shrunk to %zu (%llu "
                 "probes)\n",
                 violation.schedule.size(), violation.shrunk.size(),
                 static_cast<unsigned long long>(violation.shrink_probes));
    WriteViolationArtifacts(scenario, violation, options,
                            flags.Get("out-dir"));
  }
  if (result.violations.empty())
    std::printf("explore: clean — no property violations\n");

  if (!flags.Get("out").empty())
    WriteExploreJson(flags.Get("out"), scenario, options, result);

  // Representative run for the observer-based sinks (--trace-out,
  // --event-log-out, ...): the scenario's default schedule.
  if (sinks.observer() != nullptr) {
    cluster::TestbedOptions run_options = scenario.options;
    run_options.observer = sinks.observer();
    cluster::RunTestbed(scenario.jobs, run_options);
  }
  tools::RunSummary summary;
  summary.tool = "simmr_explore";
  summary.scenario = "scenario=" + scenario.name +
                     " seed=" + std::to_string(options.seed) +
                     " depth=" + std::to_string(options.max_depth);
  summary.simulator = "testbed";
  summary.events_processed = result.stats.choice_points;
  summary.jobs = scenario.jobs.size();
  sinks.Write(summary);
  return result.violations.empty() ? 0 : 2;
}

/// Corpus regression (--replay). An artifact with no fault pinned a real
/// interleaving failure: the property must hold now (the bug stays
/// fixed). One with a fault is a detector pin: re-injecting the fault
/// must still trip the property. Exit 0 = good, 2 = regression.
int RunReplay(const std::string& path) {
  const mc::ExploreReproducer repro = mc::ReadExploreReproducerFile(path);
  const mc::Scenario scenario = mc::MakeScenario(repro.scenario);
  mc::ExploreOptions options;
  options.properties = {repro.property};
  options.fault = repro.fault;
  options.seed = repro.explore_seed;
  if (!repro.base.note.empty())
    std::printf("reproducer note: %s\n", repro.base.note.c_str());

  const mc::RunOutcome outcome =
      mc::RunSchedule(scenario, repro.schedule, options);
  bool violated = false;
  for (const check::Violation& violation : outcome.violations)
    violated = violated || violation.invariant == repro.property;

  if (repro.fault.empty()) {
    if (!violated) {
      std::printf("replay: %s clean (%zu choice points)\n", path.c_str(),
                  outcome.trail.size());
      return 0;
    }
    std::fprintf(stderr, "replay: %s REGRESSED:\n%s", path.c_str(),
                 check::FormatViolations(outcome.violations).c_str());
    return 2;
  }
  if (violated) {
    std::printf("replay: %s fault '%s' still caught by property '%s'\n",
                path.c_str(), repro.fault.c_str(), repro.property.c_str());
    return 0;
  }
  std::fprintf(stderr,
               "replay: %s DETECTOR REGRESSION: fault '%s' no longer trips "
               "property '%s'\n",
               path.c_str(), repro.fault.c_str(), repro.property.c_str());
  return 2;
}

/// --self-test: for every property detector, prove end-to-end that a
/// seeded fault is (1) caught by exploration while the un-faulted baseline
/// is clean, (2) ddmin-shrunk to a schedule that still trips it, and
/// (3) written as an .xrepro artifact that replays deterministically —
/// two runs of the read-back file produce identical violation reports.
int RunSelfTest(const tools::Flags& flags) {
  const std::string out_dir = flags.Get("out-dir");
  std::filesystem::create_directories(out_dir);

  struct FaultCase {
    const char* fault;
    const char* property;
    /// Empty = the --scenario flag. The capacity fault needs jobs that
    /// contend for map slots (pair2): with one map per job, two starved
    /// half-capacity queues still get a slot each and stay FIFO-equivalent,
    /// so the fault would be undetectable by construction.
    const char* scenario;
  };
  const FaultCase cases[] = {
      {"invariants", "invariants", ""},
      {"capacity", "fifo_capacity_equivalence", "pair2"},
      {"edf", "edf_preemption_dominance", ""},
      {"replay", "replay_accuracy", ""},
  };

  bool all_ok = true;
  for (const FaultCase& fault_case : cases) {
    const mc::Scenario scenario = mc::MakeScenario(
        fault_case.scenario[0] != '\0' ? fault_case.scenario
                                       : flags.Get("scenario"));
    mc::ExploreOptions options;
    options.max_depth = flags.GetInt("depth");
    // A seeded fault trips on every schedule, so a handful of executions
    // is plenty; the point is the catch/shrink/replay loop, not coverage.
    options.budget = 8;
    options.seed = ResolveSeed(flags.Get("seed"));
    options.properties = {fault_case.property};
    options.fault = fault_case.fault;

    // The same property without the fault must be clean, or the detection
    // proves nothing.
    mc::ExploreOptions baseline = options;
    baseline.fault.clear();
    if (!mc::RunSchedule(scenario, {}, baseline).violations.empty()) {
      std::fprintf(stderr, "self-test: baseline for '%s' not clean\n",
                   fault_case.fault);
      all_ok = false;
      continue;
    }

    const mc::ExploreResult result = mc::Explore(scenario, options);
    const mc::ExploreViolation* found = nullptr;
    for (const mc::ExploreViolation& violation : result.violations)
      if (violation.property == fault_case.property) found = &violation;
    if (found == nullptr) {
      std::fprintf(stderr, "self-test: fault '%s' NOT caught\n",
                   fault_case.fault);
      all_ok = false;
      continue;
    }
    if (!Violates(mc::RunSchedule(scenario, found->shrunk, options),
                  fault_case.property)) {
      std::fprintf(stderr,
                   "self-test: fault '%s' shrunk schedule no longer "
                   "violates\n",
                   fault_case.fault);
      all_ok = false;
      continue;
    }

    const std::string repro_path = WriteViolationArtifacts(
        scenario, *found, options, out_dir);
    const mc::ExploreReproducer read_back =
        mc::ReadExploreReproducerFile(repro_path);
    mc::ExploreOptions replay_options;
    replay_options.properties = {read_back.property};
    replay_options.fault = read_back.fault;
    replay_options.seed = read_back.explore_seed;
    const std::string report_a = check::FormatViolations(
        mc::RunSchedule(scenario, read_back.schedule, replay_options)
            .violations);
    const std::string report_b = check::FormatViolations(
        mc::RunSchedule(scenario, read_back.schedule, replay_options)
            .violations);
    if (report_a.empty() || report_a != report_b) {
      std::fprintf(stderr,
                   "self-test: fault '%s' reproducer not deterministic\n",
                   fault_case.fault);
      all_ok = false;
      continue;
    }
    std::printf(
        "self-test: fault '%s' caught by '%s', shrunk %zu -> %zu pick(s), "
        "replays deterministically\n",
        fault_case.fault, fault_case.property, found->schedule.size(),
        found->shrunk.size());
  }
  if (!all_ok) return 2;
  std::printf("self-test: all property detectors caught and shrunk\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<tools::FlagSpec> specs = {
      {"scenario", "pair", "exploration scenario (pair | pair2 | smoke3)"},
      {"depth", "64",
       "choice points enumerated exhaustively; deeper ones get the seeded "
       "random tail"},
      {"budget", "20000", "maximum DFS executions"},
      {"seed", "42",
       "seed for random tails and the random phase: a decimal uint64 or "
       "any string (hashed), e.g. a git SHA"},
      {"random", "0", "extra fully-random executions after the DFS phase"},
      {"property", "",
       "comma-separated property subset (invariants, "
       "fifo_capacity_equivalence, edf_preemption_dominance, "
       "replay_accuracy); empty = all"},
      {"fault", "",
       "detector self-test fault to inject (invariants | capacity | edf | "
       "replay)"},
      {"no-prune", "",
       "disable sleep-set pruning (naive full enumeration)", true},
      {"out", "", "optional simmr.explore.v1 JSON output path"},
      {"out-dir", ".", "directory for .xrepro + history-log artifacts"},
      {"replay", "",
       "re-run an .xrepro exploration reproducer instead of exploring"},
      {"self-test", "",
       "inject each property fault; assert caught, shrunk, and "
       "deterministic",
       true},
      tools::ThreadsFlag(),
      tools::LogLevelFlag(),
  };
  // Flag parity with the other tools: the shared observability sinks
  // apply to the exploration mode (a representative default-schedule run).
  for (auto& spec : tools::ObservabilityFlagSpecs()) specs.push_back(spec);
  const auto flags = tools::Flags::Parse(
      argc, argv,
      "Stateless model checker: enumerates the testbed's scheduler\n"
      "interleavings (heartbeat order, tie-broken completions) depth-first\n"
      "with sleep-set pruning, checking causal invariants and the\n"
      "cross-policy properties on every execution; violations shrink to\n"
      "replayable .xrepro artifacts.\n"
      "Exit: 0 clean, 1 usage/runtime error, 2 violation or regression.",
      std::move(specs));
  if (!flags) return tools::Flags::LastParseFailed() ? 1 : 0;
  if (!tools::ApplyLogLevel(*flags)) return 1;

  try {
    const bool explore_mode =
        flags->Get("replay").empty() && !flags->GetBool("self-test");
    tools::ObservabilitySinks sinks;
    if (explore_mode) {
      sinks.Init(*flags);
    } else {
      for (const char* name : {"trace-out", "metrics-out", "telemetry-out",
                               "event-log-out", "profile-out",
                               "timeseries-out"}) {
        if (!flags->Get(name).empty())
          std::fprintf(stderr,
                       "warning: --%s applies to exploration only; ignored "
                       "in this mode\n",
                       name);
      }
      if (flags->Get("serve-metrics") != "-1")
        std::fprintf(stderr,
                     "warning: --serve-metrics applies to exploration "
                     "only; ignored in this mode\n");
    }
    if (!flags->Get("replay").empty()) return RunReplay(flags->Get("replay"));
    if (flags->GetBool("self-test")) return RunSelfTest(*flags);
    return RunExplore(*flags, sinks);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
