// simmr_tracegen: Synthetic TraceGen as a command — generate synthetic job
// profiles into a trace database.
//
//   simmr_tracegen --model=facebook --jobs=100 --out-db=fb_traces/
//   simmr_tracegen --model=uniform --jobs=20 --maps=100 --reduces=32
#include <cstdio>

#include "tool_common.h"
#include "trace/synthetic_tracegen.h"
#include "trace/trace_database.h"

int main(int argc, char** argv) {
  using namespace simmr;
  const auto flags = tools::Flags::Parse(
      argc, argv,
      "Generates synthetic job profiles into a trace database. The\n"
      "'facebook' model uses the paper's LogNormal fits (Section V-C);\n"
      "'uniform' draws phase durations from configurable uniform ranges.",
      {
          {"model", "facebook", "workload model: facebook | uniform"},
          {"jobs", "50", "number of jobs to generate"},
          {"out-db", "synthetic_traces", "output trace-database directory"},
          {"seed", "42", "generator seed"},
          // uniform-model knobs:
          {"maps", "100", "uniform model: map tasks per job"},
          {"reduces", "32", "uniform model: reduce tasks per job"},
          {"map-min", "5", "uniform model: min map duration, s"},
          {"map-max", "15", "uniform model: max map duration, s"},
          {"shuffle-min", "3", "uniform model: min shuffle duration, s"},
          {"shuffle-max", "8", "uniform model: max shuffle duration, s"},
          {"reduce-min", "1", "uniform model: min reduce duration, s"},
          {"reduce-max", "4", "uniform model: max reduce duration, s"},
          tools::LogLevelFlag(),
      });
  if (!flags) return tools::Flags::LastParseFailed() ? 1 : 0;
  if (!tools::ApplyLogLevel(*flags)) return 1;

  try {
    Rng rng(static_cast<std::uint64_t>(flags->GetInt("seed")));
    const int jobs = flags->GetInt("jobs");
    trace::TraceDatabase db;
    const std::string model = flags->Get("model");
    if (model == "facebook") {
      trace::FacebookWorkloadModel fb;
      for (auto& profile : trace::SynthesizeFacebookWorkload(fb, jobs, rng)) {
        db.Put(std::move(profile));
      }
    } else if (model == "uniform") {
      trace::SyntheticJobSpec spec;
      spec.app_name = "uniform-synthetic";
      spec.num_maps = flags->GetInt("maps");
      spec.num_reduces = flags->GetInt("reduces");
      spec.first_wave_size = spec.num_reduces / 2;
      spec.map_duration = std::make_shared<UniformDist>(
          flags->GetDouble("map-min"), flags->GetDouble("map-max"));
      spec.typical_shuffle_duration = std::make_shared<UniformDist>(
          flags->GetDouble("shuffle-min"), flags->GetDouble("shuffle-max"));
      spec.first_shuffle_duration = std::make_shared<UniformDist>(
          0.5 * flags->GetDouble("shuffle-min"),
          0.5 * flags->GetDouble("shuffle-max"));
      spec.reduce_duration = std::make_shared<UniformDist>(
          flags->GetDouble("reduce-min"), flags->GetDouble("reduce-max"));
      for (int i = 0; i < jobs; ++i) {
        spec.dataset = "job-" + std::to_string(i);
        db.Put(trace::SynthesizeProfile(spec, rng));
      }
    } else {
      std::fprintf(stderr, "error: unknown model '%s'\n", model.c_str());
      return 1;
    }
    db.Save(flags->Get("out-db"));
    std::printf("generated %zu %s profiles into %s\n", db.size(),
                model.c_str(), flags->Get("out-db").c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
