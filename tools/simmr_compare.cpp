// simmr_compare: the Figure 5 validation pipeline as a command — given a
// history log, replay every job's trace in both SimMR and the Mumak
// baseline and report per-job accuracy against the logged ground truth.
//
//   simmr_testbed --suite=validation --out=history.log
//   simmr_compare --log=history.log
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>

#include "analysis/result_stats.h"
#include "backend/backends.h"
#include "cluster/history_log.h"
#include "mumak/mumak_sim.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/metrics_observer.h"
#include "obs/telemetry.h"
#include "prof/profiler.h"
#include "sched/fifo.h"
#include "tool_common.h"
#include "trace/mr_profiler.h"

int main(int argc, char** argv) {
  using namespace simmr;
  // Flag parity: the full shared ObservabilityFlagSpecs table. Every
  // per-run output (--trace-out, --metrics-out, --event-log-out,
  // --timeseries-out) is written once per simulator, with ".simmr" /
  // ".mumak" inserted before the extension (an extensionless prefix gets
  // the format's extension appended, e.g. "cmp" -> "cmp.simmr.jsonl").
  std::vector<tools::FlagSpec> specs = {
      {"log", "history.log", "input history-log path"},
      {"map-slots", "64", "cluster map slots for the replay"},
      {"reduce-slots", "64", "cluster reduce slots for the replay"},
      {"mumak-nodes", "64", "node count for the Mumak baseline"},
      tools::LogLevelFlag(),
  };
  for (auto& spec : tools::ObservabilityFlagSpecs()) specs.push_back(spec);
  const auto flags = tools::Flags::Parse(
      argc, argv,
      "Replays each job of a history log in SimMR and in the Mumak\n"
      "baseline (FIFO) and reports completion-time accuracy against the\n"
      "log's ground truth — the paper's Figure 5(a) methodology.\n"
      "Telemetry carries an aggregate plus a per-simulator breakdown;\n"
      "the other observability outputs are written per simulator\n"
      "(<path>.simmr.* / <path>.mumak.*); --serve-metrics exposes the\n"
      "SimMR-side registry. Jobs replay one at a time at t=0, so\n"
      "time-series and traces overlay the per-job replays on one axis.",
      std::move(specs));
  if (!flags) return tools::Flags::LastParseFailed() ? 1 : 0;
  if (!tools::ApplyLogLevel(*flags)) return 1;

  try {
    const auto log = cluster::HistoryLog::ReadFile(flags->Get("log"));
    if (log.jobs().empty()) {
      std::fprintf(stderr, "error: history log has no jobs\n");
      return 1;
    }
    const auto profiles = trace::BuildAllProfiles(log);
    const auto rumen = mumak::RumenTrace::FromHistory(log);

    core::SimConfig cfg;
    cfg.map_slots = flags->GetInt("map-slots");
    cfg.reduce_slots = flags->GetInt("reduce-slots");
    mumak::MumakConfig mcfg;
    mcfg.num_nodes = flags->GetInt("mumak-nodes");
    sched::FifoPolicy fifo;

    // One observer stack per simulator: summing SimMR and Mumak events into
    // one blob would hide which side produced them, so every per-run
    // output is written per simulator (variant paths) and the telemetry
    // reports both a breakdown and the aggregate (written here, not by the
    // sinks). The SimMR-side sinks own the profiler and the --serve-metrics
    // endpoint — both are process-wide singletons.
    const std::string telemetry_out = flags->Get("telemetry-out");
    tools::ObservabilitySinks simmr_sinks, mumak_sinks;
    tools::SinkInitOptions simmr_init;
    simmr_init.variant = "simmr";
    simmr_init.write_telemetry = false;
    simmr_sinks.Init(*flags, simmr_init);
    tools::SinkInitOptions mumak_init;
    mumak_init.variant = "mumak";
    mumak_init.arm_profiler = false;
    mumak_init.serve = false;
    mumak_init.write_telemetry = false;
    mumak_sinks.Init(*flags, mumak_init);
    simmr_sinks.SetSlotConfig(cfg.map_slots, cfg.reduce_slots);
    cfg.observer = simmr_sinks.observer();
    mcfg.observer = mumak_sinks.observer();
    simmr_sinks.live().sessions_total.store(2 * profiles.size());
    const auto wall_start = std::chrono::steady_clock::now();

    std::printf("%-12s %-18s %10s %10s %8s %10s %8s\n", "app", "dataset",
                "actual_s", "simmr_s", "err_%", "mumak_s", "err_%");
    analysis::AccuracyStats simmr_acc, mumak_acc;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      const auto& job_record = log.jobs()[i];
      const double actual = job_record.finish_time - job_record.submit_time;

      // Each iteration replays one job at id 0 / time 0; the offset keeps
      // the combined event logs' job ids aligned with the history log.
      if (simmr_sinks.event_log() != nullptr) {
        simmr_sinks.event_log()->set_job_id_offset(
            static_cast<std::int32_t>(i));
        mumak_sinks.event_log()->set_job_id_offset(
            static_cast<std::int32_t>(i));
      }

      // Both replays flow through the unified RunResult: each simulator's
      // backend adapts its native result, and the accuracy statistics only
      // ever see simulator-neutral JobOutcomes.
      trace::WorkloadTrace w(1);
      w[0].profile = profiles[i];
      const backend::RunResult simmr_result =
          backend::SimmrBackend(cfg, fifo, std::move(w)).Run();
      const double simmr_t = simmr_result.jobs[0].CompletionTime();

      mumak::RumenTrace one;
      one.jobs.push_back(rumen.jobs[i]);
      one.jobs[0].submit_time = 0.0;
      const backend::RunResult mumak_result =
          backend::MumakBackend(std::move(one), mcfg).Run();
      const double mumak_t = mumak_result.jobs[0].CompletionTime();

      auto& live = simmr_sinks.live();
      if (!simmr_sinks.serving()) {
        live.events_processed.fetch_add(simmr_result.events_processed,
                                        std::memory_order_relaxed);
      }
      live.events_processed.fetch_add(mumak_result.events_processed,
                                      std::memory_order_relaxed);
      live.sessions_completed.fetch_add(2, std::memory_order_relaxed);

      simmr_acc.Add(actual, simmr_t);
      mumak_acc.Add(actual, mumak_t);
      std::printf("%-12s %-18s %10.1f %10.1f %+7.1f%% %10.1f %+7.1f%%\n",
                  job_record.app_name.c_str(), job_record.dataset.c_str(),
                  actual, simmr_t, simmr_acc.errors_pct.back(), mumak_t,
                  mumak_acc.errors_pct.back());
    }
    std::printf(
        "\nSimMR |error|: avg %.1f%%, max %.1f%%   "
        "Mumak |error|: avg %.1f%%, max %.1f%%\n",
        simmr_acc.AvgAbsError(), simmr_acc.MaxAbsError(),
        mumak_acc.AvgAbsError(), mumak_acc.MaxAbsError());
    std::printf("paper reference: SimMR <=2.7%% avg / 6.6%% max; Mumak 37%% "
                "avg / 51.7%% max.\n");

    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    const std::string scenario =
        "jobs=" + std::to_string(profiles.size()) + " mumak-nodes=" +
        std::to_string(mcfg.num_nodes);

    // Per-simulator outputs (variant paths), then the merged telemetry.
    // The SimMR-side Write() also joins the metrics server and writes the
    // process-wide profile.
    tools::RunSummary simmr_summary;
    simmr_summary.tool = "simmr_compare";
    simmr_summary.scenario = scenario;
    simmr_summary.simulator = "simmr";
    simmr_summary.wall_seconds = wall_seconds;
    simmr_summary.jobs = profiles.size();
    if (simmr_sinks.metrics() != nullptr) {
      simmr_summary.events_processed =
          simmr_sinks.metrics()->events_dequeued();
    }
    simmr_sinks.Write(simmr_summary);
    tools::RunSummary mumak_summary = simmr_summary;
    mumak_summary.simulator = "mumak";
    if (mumak_sinks.metrics() != nullptr) {
      mumak_summary.events_processed =
          mumak_sinks.metrics()->events_dequeued();
    }
    mumak_sinks.Write(mumak_summary);

    if (!telemetry_out.empty()) {
      obs::MetricsObserver* simmr_metrics = simmr_sinks.metrics();
      obs::MetricsObserver* mumak_metrics = mumak_sinks.metrics();
      // Aggregate across both simulators, plus a per-simulator breakdown so
      // the combined event count is attributable (one blob would hide which
      // side produced the events).
      const obs::RunTelemetry simmr_t = obs::MakeRunTelemetry(
          "simmr_compare/simmr", scenario, wall_seconds,
          simmr_metrics->events_dequeued(), profiles.size(),
          /*makespan_s=*/0.0, simmr_metrics->peak_queue_depth());
      const obs::RunTelemetry mumak_t = obs::MakeRunTelemetry(
          "simmr_compare/mumak", scenario, wall_seconds,
          mumak_metrics->events_dequeued(), profiles.size(),
          /*makespan_s=*/0.0, mumak_metrics->peak_queue_depth());
      const obs::RunTelemetry aggregate = obs::MakeRunTelemetry(
          "simmr_compare", scenario, wall_seconds,
          simmr_metrics->events_dequeued() + mumak_metrics->events_dequeued(),
          profiles.size(), /*makespan_s=*/0.0,
          std::max(simmr_metrics->peak_queue_depth(),
                   mumak_metrics->peak_queue_depth()));
      // One JSON document: the aggregate object with a "breakdown" array.
      std::string json = aggregate.ToJson();
      json.pop_back();  // drop closing '}'
      json += ",\"breakdown\":[" + simmr_t.ToJson() + "," + mumak_t.ToJson() +
              "]}";
      std::ofstream out(telemetry_out);
      if (!out) throw std::runtime_error("cannot open " + telemetry_out);
      out << json << "\n";
      std::printf("telemetry written to %s\n", telemetry_out.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
