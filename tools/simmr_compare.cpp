// simmr_compare: the Figure 5 validation pipeline as a command — given a
// history log, replay every job's trace in both SimMR and the Mumak
// baseline and report per-job accuracy against the logged ground truth.
//
//   simmr_testbed --suite=validation --out=history.log
//   simmr_compare --log=history.log
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>

#include "analysis/result_stats.h"
#include "backend/backends.h"
#include "cluster/history_log.h"
#include "mumak/mumak_sim.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/metrics_observer.h"
#include "obs/telemetry.h"
#include "prof/profiler.h"
#include "sched/fifo.h"
#include "tool_common.h"
#include "trace/mr_profiler.h"

int main(int argc, char** argv) {
  using namespace simmr;
  // Flag parity: --telemetry-out / --event-log-out are the shared specs
  // from tool_common (compare treats the event-log path as a prefix, see
  // the description).
  std::vector<tools::FlagSpec> specs = {
      {"log", "history.log", "input history-log path"},
      {"map-slots", "64", "cluster map slots for the replay"},
      {"reduce-slots", "64", "cluster reduce slots for the replay"},
      {"mumak-nodes", "64", "node count for the Mumak baseline"},
      tools::LogLevelFlag(),
  };
  for (auto& spec : tools::ObservabilityFlagSpecs()) {
    if (spec.name == "telemetry-out" || spec.name == "event-log-out" ||
        spec.name == "profile-out")
      specs.push_back(spec);
  }
  const auto flags = tools::Flags::Parse(
      argc, argv,
      "Replays each job of a history log in SimMR and in the Mumak\n"
      "baseline (FIFO) and reports completion-time accuracy against the\n"
      "log's ground truth — the paper's Figure 5(a) methodology.\n"
      "Telemetry carries an aggregate plus a per-simulator breakdown;\n"
      "--event-log-out is a prefix, writing <prefix>.simmr.jsonl and\n"
      "<prefix>.mumak.jsonl.",
      std::move(specs));
  if (!flags) return tools::Flags::LastParseFailed() ? 1 : 0;
  if (!tools::ApplyLogLevel(*flags)) return 1;

  try {
    const auto log = cluster::HistoryLog::ReadFile(flags->Get("log"));
    if (log.jobs().empty()) {
      std::fprintf(stderr, "error: history log has no jobs\n");
      return 1;
    }
    const auto profiles = trace::BuildAllProfiles(log);
    const auto rumen = mumak::RumenTrace::FromHistory(log);

    core::SimConfig cfg;
    cfg.map_slots = flags->GetInt("map-slots");
    cfg.reduce_slots = flags->GetInt("reduce-slots");
    mumak::MumakConfig mcfg;
    mcfg.num_nodes = flags->GetInt("mumak-nodes");
    sched::FifoPolicy fifo;

    // One observer stack per simulator: summing SimMR and Mumak events into
    // one blob would hide which side produced them, so the telemetry keeps
    // per-simulator metrics and reports both a breakdown and the aggregate.
    const std::string telemetry_out = flags->Get("telemetry-out");
    const std::string event_log_out = flags->Get("event-log-out");
    const std::string profile_out = flags->Get("profile-out");
    if (!profile_out.empty()) {
      prof::Reset();
      prof::Arm();
    }
    obs::MetricsRegistry simmr_registry, mumak_registry;
    std::unique_ptr<obs::MetricsObserver> simmr_metrics, mumak_metrics;
    std::unique_ptr<obs::EventLogObserver> simmr_log, mumak_log;
    obs::MulticastObserver simmr_multicast, mumak_multicast;
    if (!telemetry_out.empty()) {
      simmr_metrics = std::make_unique<obs::MetricsObserver>(simmr_registry);
      mumak_metrics = std::make_unique<obs::MetricsObserver>(mumak_registry);
      simmr_multicast.Add(simmr_metrics.get());
      mumak_multicast.Add(mumak_metrics.get());
    }
    if (!event_log_out.empty()) {
      simmr_log = std::make_unique<obs::EventLogObserver>();
      mumak_log = std::make_unique<obs::EventLogObserver>();
      simmr_multicast.Add(simmr_log.get());
      mumak_multicast.Add(mumak_log.get());
    }
    if (!simmr_multicast.Empty()) {
      cfg.observer = &simmr_multicast;
      mcfg.observer = &mumak_multicast;
    }
    const auto wall_start = std::chrono::steady_clock::now();

    std::printf("%-12s %-18s %10s %10s %8s %10s %8s\n", "app", "dataset",
                "actual_s", "simmr_s", "err_%", "mumak_s", "err_%");
    analysis::AccuracyStats simmr_acc, mumak_acc;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      const auto& job_record = log.jobs()[i];
      const double actual = job_record.finish_time - job_record.submit_time;

      // Each iteration replays one job at id 0 / time 0; the offset keeps
      // the combined event logs' job ids aligned with the history log.
      if (simmr_log != nullptr) {
        simmr_log->set_job_id_offset(static_cast<std::int32_t>(i));
        mumak_log->set_job_id_offset(static_cast<std::int32_t>(i));
      }

      // Both replays flow through the unified RunResult: each simulator's
      // backend adapts its native result, and the accuracy statistics only
      // ever see simulator-neutral JobOutcomes.
      trace::WorkloadTrace w(1);
      w[0].profile = profiles[i];
      const backend::RunResult simmr_result =
          backend::SimmrBackend(cfg, fifo, std::move(w)).Run();
      const double simmr_t = simmr_result.jobs[0].CompletionTime();

      mumak::RumenTrace one;
      one.jobs.push_back(rumen.jobs[i]);
      one.jobs[0].submit_time = 0.0;
      const backend::RunResult mumak_result =
          backend::MumakBackend(std::move(one), mcfg).Run();
      const double mumak_t = mumak_result.jobs[0].CompletionTime();

      simmr_acc.Add(actual, simmr_t);
      mumak_acc.Add(actual, mumak_t);
      std::printf("%-12s %-18s %10.1f %10.1f %+7.1f%% %10.1f %+7.1f%%\n",
                  job_record.app_name.c_str(), job_record.dataset.c_str(),
                  actual, simmr_t, simmr_acc.errors_pct.back(), mumak_t,
                  mumak_acc.errors_pct.back());
    }
    std::printf(
        "\nSimMR |error|: avg %.1f%%, max %.1f%%   "
        "Mumak |error|: avg %.1f%%, max %.1f%%\n",
        simmr_acc.AvgAbsError(), simmr_acc.MaxAbsError(),
        mumak_acc.AvgAbsError(), mumak_acc.MaxAbsError());
    std::printf("paper reference: SimMR <=2.7%% avg / 6.6%% max; Mumak 37%% "
                "avg / 51.7%% max.\n");

    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    const std::string scenario =
        "jobs=" + std::to_string(profiles.size()) + " mumak-nodes=" +
        std::to_string(mcfg.num_nodes);

    if (!telemetry_out.empty()) {
      simmr_metrics->SetWallStats(wall_seconds);
      // Aggregate across both simulators, plus a per-simulator breakdown so
      // the combined event count is attributable (one blob would hide which
      // side produced the events).
      const obs::RunTelemetry simmr_t = obs::MakeRunTelemetry(
          "simmr_compare/simmr", scenario, wall_seconds,
          simmr_metrics->events_dequeued(), profiles.size(),
          /*makespan_s=*/0.0, simmr_metrics->peak_queue_depth());
      const obs::RunTelemetry mumak_t = obs::MakeRunTelemetry(
          "simmr_compare/mumak", scenario, wall_seconds,
          mumak_metrics->events_dequeued(), profiles.size(),
          /*makespan_s=*/0.0, mumak_metrics->peak_queue_depth());
      const obs::RunTelemetry aggregate = obs::MakeRunTelemetry(
          "simmr_compare", scenario, wall_seconds,
          simmr_metrics->events_dequeued() + mumak_metrics->events_dequeued(),
          profiles.size(), /*makespan_s=*/0.0,
          std::max(simmr_metrics->peak_queue_depth(),
                   mumak_metrics->peak_queue_depth()));
      // One JSON document: the aggregate object with a "breakdown" array.
      std::string json = aggregate.ToJson();
      json.pop_back();  // drop closing '}'
      json += ",\"breakdown\":[" + simmr_t.ToJson() + "," + mumak_t.ToJson() +
              "]}";
      std::ofstream out(telemetry_out);
      if (!out) throw std::runtime_error("cannot open " + telemetry_out);
      out << json << "\n";
      std::printf("telemetry written to %s\n", telemetry_out.c_str());
    }
    if (!event_log_out.empty()) {
      simmr_log->WriteFile(event_log_out + ".simmr.jsonl",
                           {"simmr_compare", scenario, "simmr"});
      mumak_log->WriteFile(event_log_out + ".mumak.jsonl",
                           {"simmr_compare", scenario, "mumak"});
      std::printf("event logs written to %s.{simmr,mumak}.jsonl (%zu + %zu "
                  "events)\n",
                  event_log_out.c_str(), simmr_log->event_count(),
                  mumak_log->event_count());
    }
    if (!profile_out.empty()) {
      prof::Disarm();
      prof::WriteFile(profile_out, "simmr_compare", scenario);
      std::printf("profile written to %s\n", profile_out.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
