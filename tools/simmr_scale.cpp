// simmr_scale: the trace-scaling extension (the paper's Section VII
// future work) as a command — derive large-dataset traces from traces
// collected on small datasets.
//
//   simmr_scale --db=traces --id=3 --data-factor=4 --out-db=scaled
#include <chrono>
#include <cstdio>

#include "simcore/parallel.h"
#include "tool_common.h"
#include "trace/trace_database.h"
#include "trace/trace_scaling.h"

int main(int argc, char** argv) {
  using namespace simmr;
  std::vector<tools::FlagSpec> specs = {
      {"db", "traces", "input trace-database directory"},
      {"out-db", "scaled_traces", "output trace-database directory"},
      {"id", "-1", "profile id to scale (-1 = all)"},
      {"data-factor", "2", "input-data growth factor (> 0)"},
      {"reduce-factor", "1", "reduce-count growth factor (> 0)"},
      {"seed", "42", "resampling seed"},
      tools::ThreadsFlag(),
      tools::LogLevelFlag(),
  };
  // simmr_scale runs no simulation, so --trace-out / --event-log-out /
  // --timeseries-out yield empty (but valid) documents; --telemetry-out
  // records wall time and the profile count, and --serve-metrics reports
  // scaling progress. Accepted anyway so scripted pipelines can pass one
  // flag set to every tool.
  for (auto& spec : tools::ObservabilityFlagSpecs()) specs.push_back(spec);
  const auto flags = tools::Flags::Parse(
      argc, argv,
      "Scales job profiles to larger (or smaller) datasets: map counts\n"
      "grow with the data, per-reduce phase durations grow with the\n"
      "per-reduce volume. Scales one profile (--id) or every profile in\n"
      "the database (--id=-1).",
      std::move(specs));
  if (!flags) return tools::Flags::LastParseFailed() ? 1 : 0;
  if (!tools::ApplyLogLevel(*flags)) return 1;

  try {
    tools::ObservabilitySinks sinks;
    sinks.Init(*flags);
    const auto wall_start = std::chrono::steady_clock::now();

    const auto db = trace::TraceDatabase::Load(flags->Get("db"));
    trace::ScalingParams params;
    params.data_factor = flags->GetDouble("data-factor");
    params.reduce_factor = flags->GetDouble("reduce-factor");
    const Rng master(static_cast<std::uint64_t>(flags->GetInt("seed")));

    std::vector<trace::TraceDatabase::ProfileId> ids;
    const int requested = flags->GetInt("id");
    if (requested < 0) {
      ids = db.AllIds();
    } else {
      ids.push_back(requested);
    }

    // Profiles are resampled in parallel (--threads/-j). Each profile gets
    // its own RNG stream split from the master seed by profile id, so the
    // output database is deterministic for a given seed regardless of
    // thread count or which --id subset is scaled.
    std::vector<trace::JobProfile> scaled(ids.size());
    sinks.live().sessions_total.store(ids.size());
    ParallelFor(
        ids.size(),
        [&](std::size_t i) {
          Rng rng = master.Split("scale", static_cast<std::uint64_t>(ids[i]));
          scaled[i] = trace::ScaleProfile(db.Get(ids[i]), params, rng);
          sinks.live().sessions_completed.fetch_add(
              1, std::memory_order_relaxed);
        },
        static_cast<unsigned>(tools::ResolveThreads(*flags)));

    trace::TraceDatabase out;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const trace::JobProfile& original = db.Get(ids[i]);
      std::printf("#%-3d %-12s %-20s maps %d -> %d, reduces %d -> %d\n",
                  ids[i], scaled[i].app_name.c_str(),
                  scaled[i].dataset.c_str(), original.num_maps,
                  scaled[i].num_maps, original.num_reduces,
                  scaled[i].num_reduces);
      out.Put(std::move(scaled[i]));
    }
    out.Save(flags->Get("out-db"));
    std::printf("wrote %zu scaled profiles (data x%.2f, reduces x%.2f) to %s\n",
                out.size(), params.data_factor, params.reduce_factor,
                flags->Get("out-db").c_str());

    tools::RunSummary summary;
    summary.tool = "simmr_scale";
    summary.scenario =
        "data-factor=" + flags->Get("data-factor") +
        " reduce-factor=" + flags->Get("reduce-factor");
    summary.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    summary.jobs = out.size();
    sinks.Write(summary);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
