// simmr_fuzz: property-based differential fuzzer for the SimMR simulators.
//
// Every perf/scale PR must be provably behavior-preserving — the paper's
// headline claim is accuracy, and golden files only catch drift on the
// handful of scenarios they encode. simmr_fuzz draws randomized workloads
// (including the adversarial corners: zero-reduce jobs, single-wave
// stages, massive skew, zero durations), runs each through the full check
// battery — exact-mode invariant observer, bit-identical differential
// replays (re-run / observer on-off / record-tasks / serial-vs-parallel),
// Mumak under causal invariants, the ARIA solo-bounds oracle — and, on a
// violation, delta-debugs the trace down to a minimal reproducer written
// as a replayable simmr.repro.v1 file plus its simmr.eventlog.v1 stream.
//
// Modes:
//   simmr_fuzz --iterations=500 --seed=42         # the fuzz loop (CI uses
//                                                 # --seed=<git sha>)
//   simmr_fuzz --replay=tests/corpus/foo.repro    # corpus regression
//   simmr_fuzz --self-test                        # prove the detector +
//                                                 # shrinker work end-to-end
//   simmr_fuzz --testbed                          # testbed cross-check:
//                                                 # profile->FIFO replay
//                                                 # within tolerance
//
// Exit codes: 0 = clean, 1 = usage/runtime error, 2 = failure found
// (fuzz), detector/shrinker regression (self-test/replay), or accuracy
// drift (testbed).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "backend/session.h"
#include "check/invariant_observer.h"
#include "cluster/app_model.h"
#include "cluster/cluster_sim.h"
#include "core/simmr.h"
#include "fault/fault_gen.h"
#include "fault/fault_plan.h"
#include "fuzz/differential.h"
#include "fuzz/fault_injection.h"
#include "fuzz/harness.h"
#include "fuzz/repro.h"
#include "fuzz/shrinker.h"
#include "fuzz/trace_fuzzer.h"
#include "obs/event_log.h"
#include "obs/observer.h"
#include "sched/fifo.h"
#include "simcore/rng.h"
#include "tool_common.h"
#include "trace/mr_profiler.h"
#include "trace/workload.h"

namespace {

using namespace simmr;

fuzz::FaultMode ParseFault(const std::string& name) {
  for (const fuzz::FaultMode mode :
       {fuzz::FaultMode::kNone, fuzz::FaultMode::kDropCompletion,
        fuzz::FaultMode::kDoubleCompletion, fuzz::FaultMode::kClockSkew,
        fuzz::FaultMode::kPhantomLaunch}) {
    if (name == fuzz::FaultModeName(mode)) return mode;
  }
  throw std::invalid_argument("flag --fault: unknown mode '" + name +
                              "' (want none | drop-completion | "
                              "double-completion | clock-skew | "
                              "phantom-launch)");
}

/// Re-runs one case with the event-log recorder attached (behind the
/// fault, so the log documents the corrupted stream the checker saw) and
/// writes the simmr.eventlog.v1 file next to the reproducer.
void WriteCaseEventLog(const std::vector<trace::JobProfile>& pool,
                       backend::ReplaySpec spec, const fuzz::FaultSpec& fault,
                       const fault::FaultPlan& plan, const std::string& path,
                       const std::string& scenario) {
  auto pool_ptr = std::make_shared<const std::vector<trace::JobProfile>>(pool);
  std::shared_ptr<const std::vector<double>> solos;
  if (spec.deadline_factor > 0.0) {
    solos = std::make_shared<const std::vector<double>>(
        core::MeasureSoloCompletions(pool, core::SimConfig{}));
  } else {
    solos = std::make_shared<const std::vector<double>>();
  }
  const backend::SimSession session(pool_ptr, solos);
  obs::EventLogObserver recorder;
  fuzz::FaultInjectingObserver faulty(fault, &recorder);
  spec.observer = fault.mode == fuzz::FaultMode::kNone
                      ? static_cast<obs::SimObserver*>(&recorder)
                      : &faulty;
  if (!plan.Empty()) spec.fault_plan = &plan;
  session.Replay(spec);
  obs::EventLogHeader header;
  header.tool = "simmr_fuzz";
  header.scenario = scenario;
  header.simulator = "simmr";
  recorder.WriteFile(path, header);
}

/// Everything written when a case fails: the shrunk reproducer and its
/// event log. Returns the reproducer path for the exit message.
std::string WriteFailureArtifacts(const fuzz::Reproducer& repro,
                                  const std::string& out_dir,
                                  const std::string& stem) {
  std::filesystem::create_directories(out_dir);
  const std::string repro_path = out_dir + "/" + stem + ".repro";
  const std::string log_path = out_dir + "/" + stem + ".eventlog.jsonl";
  fuzz::WriteReproducerFile(repro_path, repro);
  WriteCaseEventLog(repro.pool, repro.spec, repro.fault, repro.fault_plan,
                    log_path, "reproducer " + stem);
  std::printf("reproducer written to %s\n", repro_path.c_str());
  std::printf("event log written to %s\n", log_path.c_str());
  return repro_path;
}

fuzz::BatteryOptions BatteryFor(const fuzz::FaultSpec& fault) {
  fuzz::BatteryOptions options;
  options.fault = fault;
  if (fault.mode != fuzz::FaultMode::kNone) {
    // Self-test minimizes the *detector's* reaction to the corrupted
    // stream; the clean differential/oracle layers would only slow the
    // shrink down without changing what is caught.
    options.run_differentials = false;
    options.run_thread_differential = false;
    options.run_mumak = false;
    options.run_aria_oracle = false;
  }
  return options;
}

/// The shrink predicate: does the case still trip the battery?
fuzz::FailurePredicate FailsWith(const fuzz::BatteryOptions& options) {
  return [options](const std::vector<trace::JobProfile>& pool,
                   const backend::ReplaySpec& spec) {
    return !fuzz::RunCheckBattery(pool, spec, options).ok();
  };
}

/// The default fuzz loop. Returns the process exit code. The shared
/// observability sinks (tool_common) listen in on case 0's primary replay
/// — one representative case keeps the event log a single coherent run —
/// and are written out when the loop finishes clean.
int RunFuzzLoop(const tools::Flags& flags, std::uint64_t master_seed,
                tools::ObservabilitySinks& sinks) {
  const int iterations = flags.GetInt("iterations");
  if (iterations <= 0) {
    std::fprintf(stderr, "error: --iterations must be positive\n");
    return 1;
  }
  fuzz::FuzzConfig config;
  config.max_jobs = flags.GetInt("max-jobs");
  config.adversarial = !flags.GetBool("benign");
  if (config.max_jobs < config.min_jobs) {
    std::fprintf(stderr, "error: --max-jobs must be >= %d\n", config.min_jobs);
    return 1;
  }
  fuzz::BatteryOptions options;
  options.run_mumak = !flags.GetBool("skip-mumak");
  options.run_aria_oracle = !flags.GetBool("skip-aria");

  const Rng master(master_seed);
  const auto wall_start = std::chrono::steady_clock::now();
  std::uint64_t callbacks = 0;
  sinks.live().sessions_total.store(
      static_cast<std::uint64_t>(iterations));
  for (int i = 0; i < iterations; ++i) {
    // Each case regenerates bit-identically from (master seed, index):
    // the loop can be re-entered at any index for debugging.
    Rng case_rng = master.Split("fuzz/case", static_cast<std::uint64_t>(i));
    const auto pool = fuzz::FuzzProfilePool(config, case_rng);
    backend::ReplaySpec spec = fuzz::FuzzReplaySpec(config, pool.size(),
                                                    case_rng);
    // Fault archetype: ~1 case in 4 also runs under a generated fault
    // plan. Drawn after the pool and spec so fault-free cases regenerate
    // exactly the pre-fault streams (old corpus seeds stay meaningful).
    fault::FaultPlan plan;
    if (case_rng.NextBounded(4) == 0) {
      fault::FaultGenOptions fault_gen;
      fault_gen.kill_jobs = static_cast<std::int32_t>(pool.size());
      plan = fault::GenerateFaultPlan(case_rng.Split("fault-plan").seed(),
                                      fault_gen);
      if (!plan.Empty()) {
        // The engine requires the spec's slot totals to match the plan's
        // geometry (node faults become slot-capacity deltas).
        spec.map_slots = plan.num_nodes * plan.map_slots_per_node;
        spec.reduce_slots = plan.num_nodes * plan.reduce_slots_per_node;
      }
    }
    fuzz::BatteryOptions case_options = options;
    if (!plan.Empty()) case_options.fault_plan = &plan;
    if (i == 0) case_options.extra_observer = sinks.observer();
    const fuzz::BatteryResult result =
        fuzz::RunCheckBattery(pool, spec, case_options);
    callbacks += result.callbacks_seen;
    sinks.live().sessions_completed.fetch_add(1, std::memory_order_relaxed);
    if (result.ok()) continue;

    std::fprintf(stderr, "case %d (seed %llu) violated %zu invariant(s):\n%s",
                 i, static_cast<unsigned long long>(master_seed),
                 result.violations.size(),
                 check::FormatViolations(result.violations).c_str());
    std::fprintf(stderr, "shrinking...\n");
    // The shrink predicate keeps the fault plan (but not case 0's extra
    // sinks); the shrinker never mutates slots, so the plan's geometry
    // stays valid on every probe.
    fuzz::BatteryOptions shrink_options = options;
    shrink_options.fault_plan = case_options.fault_plan;
    const fuzz::ShrinkResult shrunk =
        fuzz::ShrinkFailure(pool, spec, FailsWith(shrink_options));
    std::fprintf(stderr, "shrunk to %zu job(s) in %d round(s), %llu probes\n",
                 shrunk.pool.size(), shrunk.rounds,
                 static_cast<unsigned long long>(shrunk.probes));

    fuzz::Reproducer repro;
    repro.master_seed = master_seed;
    repro.spec = shrunk.spec;
    repro.pool = shrunk.pool;
    repro.fault_plan = plan;
    repro.note = check::FormatViolations(
        {fuzz::RunCheckBattery(shrunk.pool, shrunk.spec, shrink_options)
             .violations.front()});
    WriteFailureArtifacts(repro, flags.Get("out-dir"),
                          "case-" + std::to_string(master_seed) + "-" +
                              std::to_string(i));
    return 2;
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  std::printf(
      "fuzz: %d cases clean (seed %llu, %llu callbacks checked) in %.2f s\n",
      iterations, static_cast<unsigned long long>(master_seed),
      static_cast<unsigned long long>(callbacks), wall_seconds);
  tools::RunSummary summary;
  summary.tool = "simmr_fuzz";
  summary.scenario = "iterations=" + std::to_string(iterations) +
                     " seed=" + std::to_string(master_seed);
  summary.simulator = "simmr";
  summary.wall_seconds = wall_seconds;
  summary.events_processed =
      sinks.metrics() != nullptr ? sinks.metrics()->events_dequeued() : 0;
  sinks.Write(summary);
  return 0;
}

/// Corpus regression (--replay). A reproducer with no fault captured a
/// real failure: the invariants must hold now (the bug stays fixed). A
/// reproducer with a fault is a detector pin: the corruption must still be
/// caught. Either way exit 0 = good, 2 = regression.
int RunReplay(const std::string& path) {
  const fuzz::Reproducer repro = fuzz::ReadReproducerFile(path);
  fuzz::BatteryOptions options = BatteryFor(repro.fault);
  if (!repro.fault_plan.Empty()) options.fault_plan = &repro.fault_plan;
  const fuzz::BatteryResult result =
      fuzz::RunCheckBattery(repro.pool, repro.spec, options);
  if (!repro.note.empty())
    std::printf("reproducer note: %s\n", repro.note.c_str());
  if (repro.fault.mode == fuzz::FaultMode::kNone) {
    if (result.ok()) {
      std::printf("replay: %s clean (%llu callbacks)\n", path.c_str(),
                  static_cast<unsigned long long>(result.callbacks_seen));
      return 0;
    }
    std::fprintf(stderr, "replay: %s REGRESSED:\n%s", path.c_str(),
                 check::FormatViolations(result.violations).c_str());
    return 2;
  }
  if (!result.ok()) {
    std::printf("replay: %s fault '%s' still caught (%zu violations)\n",
                path.c_str(), fuzz::FaultModeName(repro.fault.mode),
                result.violations.size());
    return 0;
  }
  std::fprintf(stderr,
               "replay: %s DETECTOR REGRESSION: fault '%s' (trigger %llu) "
               "no longer caught\n",
               path.c_str(), fuzz::FaultModeName(repro.fault.mode),
               static_cast<unsigned long long>(repro.fault.trigger));
  return 2;
}

/// --self-test: for every fault class, prove end-to-end that a seeded,
/// deliberately-broken invariant is (1) caught by the observer, (2) shrunk
/// to a <= 3-job reproducer, and (3) that the written reproducer replays
/// deterministically — two reads of the emitted file produce identical
/// violation reports.
int RunSelfTest(const tools::Flags& flags, std::uint64_t master_seed) {
  const Rng master(master_seed);
  fuzz::FuzzConfig config;
  config.max_jobs = flags.GetInt("max-jobs");
  const std::string out_dir = flags.Get("out-dir");

  bool all_ok = true;
  for (const fuzz::FaultMode mode :
       {fuzz::FaultMode::kDropCompletion, fuzz::FaultMode::kDoubleCompletion,
        fuzz::FaultMode::kClockSkew, fuzz::FaultMode::kPhantomLaunch}) {
    const char* name = fuzz::FaultModeName(mode);
    Rng case_rng = master.Split("self-test", HashName(name));
    const auto pool = fuzz::FuzzProfilePool(config, case_rng);
    const auto spec = fuzz::FuzzReplaySpec(config, pool.size(), case_rng);
    fuzz::FaultSpec fault;
    fault.mode = mode;
    const fuzz::BatteryOptions options = BatteryFor(fault);

    // (1) Caught at all?
    const fuzz::BatteryResult broken =
        fuzz::RunCheckBattery(pool, spec, options);
    if (broken.ok()) {
      std::fprintf(stderr, "self-test: fault '%s' NOT caught\n", name);
      all_ok = false;
      continue;
    }
    // ...while the same case without the fault must be clean, or the
    // detection proves nothing.
    if (!fuzz::RunCheckBattery(pool, spec, BatteryFor({})).ok()) {
      std::fprintf(stderr, "self-test: baseline for '%s' not clean\n", name);
      all_ok = false;
      continue;
    }

    // (2) Shrinks to a tiny reproducer?
    const fuzz::ShrinkResult shrunk =
        fuzz::ShrinkFailure(pool, spec, FailsWith(options));
    if (shrunk.pool.size() > 3) {
      std::fprintf(stderr,
                   "self-test: fault '%s' shrunk only to %zu jobs (want <=3)\n",
                   name, shrunk.pool.size());
      all_ok = false;
      continue;
    }

    // (3) The written artifact replays deterministically.
    fuzz::Reproducer repro;
    repro.master_seed = master_seed;
    repro.fault = fault;
    repro.spec = shrunk.spec;
    repro.pool = shrunk.pool;
    const fuzz::BatteryResult shrunk_run =
        fuzz::RunCheckBattery(shrunk.pool, shrunk.spec, options);
    repro.note = check::FormatViolations({shrunk_run.violations.front()});
    const std::string repro_path = WriteFailureArtifacts(
        repro, out_dir, std::string("self-test-") + name);

    const fuzz::Reproducer read_back = fuzz::ReadReproducerFile(repro_path);
    const fuzz::BatteryOptions replay_options = BatteryFor(read_back.fault);
    const std::string report_a = check::FormatViolations(
        fuzz::RunCheckBattery(read_back.pool, read_back.spec, replay_options)
            .violations);
    const std::string report_b = check::FormatViolations(
        fuzz::RunCheckBattery(read_back.pool, read_back.spec, replay_options)
            .violations);
    if (report_a.empty() || report_a != report_b ||
        report_a != check::FormatViolations(shrunk_run.violations)) {
      std::fprintf(stderr,
                   "self-test: fault '%s' reproducer not deterministic\n",
                   name);
      all_ok = false;
      continue;
    }
    std::printf(
        "self-test: fault '%s' caught, shrunk %zu -> %zu job(s), "
        "replays deterministically\n",
        name, pool.size(), shrunk.pool.size());
  }
  if (!all_ok) return 2;
  std::printf("self-test: all fault classes caught and shrunk\n");
  return 0;
}

/// --testbed: the cross-simulator accuracy differential. Runs the
/// validation suite on the node-level testbed under a causal-mode
/// invariant observer, profiles the history log, replays each job's trace
/// under FIFO, and requires the replay to land within --tolerance of the
/// testbed ground truth — the paper's Figure 5 methodology as a pass/fail
/// check (the paper measures <= 2.7% average error; the gate is per-job).
int RunTestbedCheck(const tools::Flags& flags, std::uint64_t seed) {
  cluster::TestbedOptions options;
  options.config.num_nodes = 16;
  options.seed = seed;
  check::InvariantOptions causal;
  causal.strictness = check::Strictness::kCausal;
  causal.map_slots =
      options.config.num_nodes * options.config.map_slots_per_node;
  causal.reduce_slots =
      options.config.num_nodes * options.config.reduce_slots_per_node;
  check::InvariantObserver invariants(causal);
  options.observer = &invariants;

  // Jobs are spaced far apart so each runs alone — Figure 5 measures
  // single-job accuracy, and the profiles are replayed solo below.
  std::vector<cluster::SubmittedJob> jobs;
  double submit = 0.0;
  for (const cluster::JobSpec& spec : cluster::ValidationSuite()) {
    jobs.push_back({spec, submit, 0.0});
    submit += 10000.0;
  }
  const cluster::TestbedResult testbed = cluster::RunTestbed(jobs, options);
  invariants.FinishRun();
  if (!invariants.ok()) {
    std::fprintf(stderr, "testbed: invariant violations:\n%s",
                 invariants.Report().c_str());
    return 2;
  }

  core::SimConfig cfg;
  cfg.map_slots = causal.map_slots;
  cfg.reduce_slots = causal.reduce_slots;
  const double tolerance_override = flags.GetDouble("tolerance");
  const auto profiles = trace::BuildAllProfiles(testbed.log);
  bool all_ok = true;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto& record = testbed.log.jobs()[i];
    const std::string label = profiles[i].app_name + "/" + profiles[i].dataset;
    const double actual = record.finish_time - record.submit_time;
    trace::WorkloadTrace w(1);
    w[0].profile = profiles[i];
    sched::FifoPolicy fifo;
    const core::SimResult replayed = core::Replay(w, fifo, cfg);
    const double simulated = replayed.jobs.at(0).CompletionTime();
    const double err =
        actual > 0.0 ? std::abs(simulated - actual) / actual : 0.0;
    const double tolerance =
        tolerance_override >= 0.0
            ? tolerance_override
            : fuzz::TestbedReplayTolerance(profiles[i].app_name);
    std::printf("testbed: %-22s actual %9.1f s replay %9.1f s (%+5.1f%%, "
                "gate %.0f%%)\n",
                label.c_str(), actual, simulated,
                100.0 * (simulated - actual) / actual, 100.0 * tolerance);
    if (err > tolerance) {
      std::fprintf(stderr, "testbed: %s error %.1f%% exceeds %.1f%%\n",
                   label.c_str(), 100.0 * err, 100.0 * tolerance);
      all_ok = false;
    }
  }
  return all_ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<tools::FlagSpec> specs = {
      {"iterations", "100", "fuzz cases to run"},
      {"seed", "42",
       "master seed: a decimal uint64 or any string (hashed), e.g. a git "
       "SHA"},
      {"out-dir", ".", "directory for reproducer + event-log artifacts"},
      {"max-jobs", "6", "largest generated profile pool"},
      {"benign", "", "disable the adversarial archetypes", true},
      {"skip-mumak", "", "skip the Mumak causal-invariant pass", true},
      {"skip-aria", "", "skip the ARIA solo-bounds oracle", true},
      {"replay", "", "re-run a simmr.repro.v1 file instead of fuzzing"},
      {"self-test", "",
       "inject each fault class; assert caught, shrunk to <=3 jobs, and "
       "deterministic",
       true},
      {"testbed", "",
       "cross-check: testbed run -> profile -> FIFO replay within "
       "--tolerance",
       true},
      {"tolerance", "-1",
       "per-job relative error gate for --testbed; -1 = per-archetype "
       "bounds (fuzz::TestbedReplayTolerances, paper avg: 0.027)"},
      {"fault", "none", "manual fault injection for the fuzz loop"},
      {"trigger", "1", "1-based callback ordinal the fault fires on"},
      tools::LogLevelFlag(),
  };
  // Flag parity with the other tools: the shared observability sinks
  // apply to the fuzz loop (attached to case 0's primary replay).
  for (auto& spec : tools::ObservabilityFlagSpecs()) specs.push_back(spec);
  const auto flags = tools::Flags::Parse(
      argc, argv,
      "Property-based differential fuzzer: randomized traces through the\n"
      "SimMR engine under an invariant-checking observer, bit-identical\n"
      "differential replays, Mumak causal checks and the ARIA bounds\n"
      "oracle; failures shrink to replayable simmr.repro.v1 reproducers.\n"
      "Exit: 0 clean, 1 usage/runtime error, 2 failure or regression.",
      std::move(specs));
  if (!flags) return tools::Flags::LastParseFailed() ? 1 : 0;
  if (!tools::ApplyLogLevel(*flags)) return 1;

  try {
    const std::uint64_t master_seed = tools::ResolveSeed(flags->Get("seed"));
    const bool fuzz_loop_mode = flags->Get("replay").empty() &&
                                !flags->GetBool("self-test") &&
                                !flags->GetBool("testbed") &&
                                flags->Get("fault") == "none";
    tools::ObservabilitySinks sinks;
    if (fuzz_loop_mode) {
      sinks.Init(*flags);
    } else {
      for (const char* name : {"trace-out", "metrics-out", "telemetry-out",
                               "event-log-out", "profile-out",
                               "timeseries-out"}) {
        if (!flags->Get(name).empty())
          std::fprintf(stderr,
                       "warning: --%s applies to the fuzz loop only; "
                       "ignored in this mode\n",
                       name);
      }
      if (flags->Get("serve-metrics") != "-1")
        std::fprintf(stderr,
                     "warning: --serve-metrics applies to the fuzz loop "
                     "only; ignored in this mode\n");
    }
    if (!flags->Get("replay").empty()) return RunReplay(flags->Get("replay"));
    if (flags->GetBool("self-test")) return RunSelfTest(*flags, master_seed);
    if (flags->GetBool("testbed")) return RunTestbedCheck(*flags, master_seed);
    const fuzz::FaultSpec manual{
        ParseFault(flags->Get("fault")),
        static_cast<std::uint64_t>(flags->GetInt("trigger"))};
    if (manual.mode != fuzz::FaultMode::kNone) {
      // Manual injection: one corrupted case, reported but not shrunk —
      // a debugging aid for new invariants.
      const Rng master(master_seed);
      Rng case_rng = master.Split("fuzz/case", 0);
      fuzz::FuzzConfig config;
      config.max_jobs = flags->GetInt("max-jobs");
      const auto pool = fuzz::FuzzProfilePool(config, case_rng);
      const auto spec = fuzz::FuzzReplaySpec(config, pool.size(), case_rng);
      const auto result =
          fuzz::RunCheckBattery(pool, spec, BatteryFor(manual));
      std::printf("%s", check::FormatViolations(result.violations).c_str());
      return result.ok() ? 2 : 0;
    }
    return RunFuzzLoop(*flags, master_seed, sinks);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
