#include "tool_common.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "obs/telemetry.h"
#include "prof/profiler.h"
#include "simcore/parallel.h"
#include "simcore/rng.h"

namespace simmr::tools {
namespace {

bool g_last_parse_failed = false;

void PrintUsage(const std::string& program, const std::string& description,
                const std::vector<FlagSpec>& specs) {
  std::fprintf(stderr, "%s\n\nusage: %s [flags]\n", description.c_str(),
               program.c_str());
  for (const auto& spec : specs) {
    const std::string label =
        spec.short_name.empty() ? spec.name
                                : spec.name + ", -" + spec.short_name;
    std::fprintf(stderr, "  --%-22s %s (default: %s)\n", label.c_str(),
                 spec.help.c_str(),
                 spec.default_value.empty() ? "\"\""
                                            : spec.default_value.c_str());
  }
}

}  // namespace

bool Flags::LastParseFailed() { return g_last_parse_failed; }

std::optional<Flags> Flags::Parse(int argc, char** argv,
                                  const std::string& description,
                                  std::vector<FlagSpec> specs) {
  g_last_parse_failed = false;
  Flags flags;
  for (const auto& spec : specs) flags.values_[spec.name] = spec.default_value;

  const auto find_spec = [&specs](const std::string& name) -> const FlagSpec* {
    for (const auto& spec : specs) {
      if (spec.name == name) return &spec;
    }
    return nullptr;
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0], description, specs);
      return std::nullopt;
    }
    const bool is_long = arg.rfind("--", 0) == 0;
    const bool is_short = !is_long && arg.rfind("-", 0) == 0;
    if (!is_long && !is_short) {
      std::fprintf(stderr, "error: unexpected argument '%s'\n", arg.c_str());
      PrintUsage(argv[0], description, specs);
      g_last_parse_failed = true;
      return std::nullopt;
    }
    arg = arg.substr(is_long ? 2 : 1);
    std::string value;
    const std::size_t eq = arg.find('=');
    bool have_value = false;
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      have_value = true;
    }
    const FlagSpec* spec = nullptr;
    if (is_long) {
      spec = find_spec(arg);
    } else {
      for (const auto& candidate : specs) {
        if (!candidate.short_name.empty() && candidate.short_name == arg)
          spec = &candidate;
      }
    }
    if (spec == nullptr) {
      std::fprintf(stderr, "error: unknown flag '%s%s'\n",
                   is_long ? "--" : "-", arg.c_str());
      PrintUsage(argv[0], description, specs);
      g_last_parse_failed = true;
      return std::nullopt;
    }
    arg = spec->name;  // aliases store under the canonical long name
    if (!have_value) {
      if (spec->is_boolean) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "error: flag '--%s' needs a value\n",
                     arg.c_str());
        g_last_parse_failed = true;
        return std::nullopt;
      }
    }
    flags.values_[arg] = value;
  }
  return flags;
}

std::string Flags::Get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end())
    throw std::logic_error("Flags::Get: undeclared flag " + name);
  return it->second;
}

int Flags::GetInt(const std::string& name) const {
  const std::string value = Get(name);
  std::size_t consumed = 0;
  const int parsed = std::stoi(value, &consumed);
  if (consumed != value.size())
    throw std::invalid_argument("flag --" + name + ": bad integer '" + value +
                                "'");
  return parsed;
}

double Flags::GetDouble(const std::string& name) const {
  const std::string value = Get(name);
  std::size_t consumed = 0;
  const double parsed = std::stod(value, &consumed);
  if (consumed != value.size())
    throw std::invalid_argument("flag --" + name + ": bad number '" + value +
                                "'");
  return parsed;
}

bool Flags::GetBool(const std::string& name) const {
  const std::string value = Get(name);
  return value == "true" || value == "1" || value == "yes";
}

FlagSpec LogLevelFlag() {
  return {"log-level", "warn", "debug | info | warn | error | off"};
}

std::optional<simmr::LogLevel> ParseLogLevel(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return std::nullopt;
}

std::vector<FlagSpec> ObservabilityFlagSpecs() {
  return {
      {"trace-out", "", "optional Perfetto/Chrome trace JSON path"},
      {"metrics-out", "",
       "optional metrics path (.json = JSON, else Prometheus text)"},
      {"telemetry-out", "", "optional run-telemetry JSON path"},
      {"event-log-out", "",
       "optional durable event-log path (simmr.eventlog.v1 JSONL)"},
      {"profile-out", "",
       "optional in-process profiler JSON path (simmr.profile.v1)"},
      {"timeseries-out", "",
       "optional sim-time time-series path (simmr.timeseries.v1 JSONL)"},
      {"timeseries-window", "60",
       "sampling window for --timeseries-out, simulated seconds"},
      {"serve-metrics", "-1",
       "serve /metrics /healthz /progress on this HTTP port while the run "
       "is live (0 = pick a free port and print it; -1 = off)"},
  };
}

std::string VariantPath(const std::string& path, const std::string& variant,
                        const std::string& default_ext) {
  if (variant.empty() || path.empty()) return path;
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + "." + variant + default_ext;
  }
  return path.substr(0, dot) + "." + variant + path.substr(dot);
}

FlagSpec ThreadsFlag() {
  return {"threads", "0",
          "worker threads for parallel phases (0 = auto: SIMMR_THREADS env "
          "var, else hardware concurrency)",
          /*is_boolean=*/false, /*short_name=*/"j"};
}

int ResolveThreads(const Flags& flags) {
  const int requested = flags.GetInt("threads");
  if (requested < 0)
    throw std::invalid_argument("flag --threads: negative thread count");
  if (requested > 0) return requested;
  if (const char* env = std::getenv("SIMMR_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return DefaultParallelism();
}

std::uint64_t ResolveSeed(const std::string& text) {
  if (!text.empty() &&
      text.find_first_not_of("0123456789") == std::string::npos &&
      text.size() <= 20) {
    try {
      return std::stoull(text);
    } catch (const std::exception&) {
      // Falls through to hashing (e.g. > 2^64 digit strings).
    }
  }
  return HashName(text);
}

ObservabilitySinks::~ObservabilitySinks() {
  if (server_ != nullptr) server_->Stop();
}

void ObservabilitySinks::Init(const Flags& flags) {
  Init(flags, SinkInitOptions{});
}

void ObservabilitySinks::Init(const Flags& flags,
                              const SinkInitOptions& options) {
  write_telemetry_ = options.write_telemetry;
  trace_out_ = VariantPath(flags.Get("trace-out"), options.variant, ".json");
  metrics_out_ = VariantPath(flags.Get("metrics-out"), options.variant);
  telemetry_out_ = flags.Get("telemetry-out");
  event_log_out_ =
      VariantPath(flags.Get("event-log-out"), options.variant, ".jsonl");
  timeseries_out_ =
      VariantPath(flags.Get("timeseries-out"), options.variant, ".jsonl");
  const int serve_port = options.serve ? flags.GetInt("serve-metrics") : -1;
  const double window = flags.GetDouble("timeseries-window");

  // The registry backs --metrics-out, --telemetry-out, the per-window
  // registry snapshot of --timeseries-out, and the live /metrics page.
  if (!metrics_out_.empty() || !telemetry_out_.empty() ||
      !timeseries_out_.empty() || serve_port >= 0) {
    metrics_ = std::make_unique<obs::MetricsObserver>(registry_);
  }
  if (!timeseries_out_.empty()) {
    obs::TimeSeriesSampler::Options ts;
    ts.window_s = window;
    ts.registry = &registry_;
    timeseries_ = std::make_unique<obs::TimeSeriesSampler>(ts);
    // The sampler goes first in the fan-out so its window-close registry
    // snapshot never includes the boundary-crossing event.
    multicast_.Add(timeseries_.get());
  }
  multicast_.Add(metrics_.get());
  if (!trace_out_.empty()) {
    obs::TraceExporter::Options trace_options;
    // Align the Perfetto queue-depth counter with the time-series windows
    // when both are requested, so the two renderings agree sample for
    // sample.
    if (timeseries_ != nullptr)
      trace_options.queue_depth_window_s = window;
    trace_ = std::make_unique<obs::TraceExporter>(trace_options);
    multicast_.Add(trace_.get());
  }
  if (!event_log_out_.empty()) {
    event_log_ = std::make_unique<obs::EventLogObserver>();
    multicast_.Add(event_log_.get());
  }
  profile_out_ = flags.Get("profile-out");
  if (!profile_out_.empty() && options.arm_profiler) {
    prof::Reset();
    prof::Arm();
  }

  if (serve_port >= 0) {
    locked_ = std::make_unique<obs::LockingObserver>(
        &multicast_, &registry_mu_, &live_.events_processed);
    obs::MetricsHttpServer::Options server_options;
    server_options.port = serve_port;
    server_ = std::make_unique<obs::MetricsHttpServer>(
        [this] {
          std::lock_guard<std::mutex> lock(registry_mu_);
          return registry_.PrometheusText();
        },
        [this] { return MakeProgress(); }, server_options);
    live_.start = std::chrono::steady_clock::now();
    const int port = server_->Start();
    // Parsed by the integration tests (port-0 discovery); keep the
    // format stable and flush past any pipe buffering.
    std::printf("serving metrics on port %d "
                "(endpoints: /metrics /healthz /progress)\n",
                port);
    std::fflush(stdout);
  }
}

obs::LiveProgress ObservabilitySinks::MakeProgress() const {
  obs::LiveProgress p;
  p.sessions_completed = live_.sessions_completed.load();
  p.sessions_total = live_.sessions_total.load();
  p.events_processed = live_.events_processed.load();
  p.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    live_.start)
          .count();
  if (p.sessions_completed > 0 && p.sessions_total >= p.sessions_completed) {
    p.eta_seconds = p.wall_seconds *
                    static_cast<double>(p.sessions_total -
                                        p.sessions_completed) /
                    static_cast<double>(p.sessions_completed);
  }
  return p;
}

void ObservabilitySinks::SetSlotConfig(int map_slots, int reduce_slots) {
  if (timeseries_ != nullptr) timeseries_->set_slots(map_slots, reduce_slots);
}

void ObservabilitySinks::Write(const RunSummary& summary) {
  if (server_ != nullptr) {
    server_->Stop();
    std::printf("metrics server stopped after %llu requests\n",
                static_cast<unsigned long long>(server_->requests_served()));
    server_.reset();
    locked_.reset();
  }
  if (metrics_ != nullptr) metrics_->SetWallStats(summary.wall_seconds);
  if (!metrics_out_.empty()) {
    const bool as_json =
        metrics_out_.size() >= 5 &&
        metrics_out_.compare(metrics_out_.size() - 5, 5, ".json") == 0;
    registry_.WriteFile(metrics_out_, as_json);
    std::printf("metrics written to %s\n", metrics_out_.c_str());
  }
  if (trace_ != nullptr) {
    trace_->WriteFile(trace_out_);
    std::printf("trace written to %s (%zu events)\n", trace_out_.c_str(),
                trace_->event_count());
  }
  if (event_log_ != nullptr) {
    event_log_->WriteFile(event_log_out_, {summary.tool, summary.scenario,
                                           summary.simulator});
    std::printf("event log written to %s (%zu events)\n",
                event_log_out_.c_str(), event_log_->event_count());
  }
  if (timeseries_ != nullptr) {
    timeseries_->WriteFile(timeseries_out_,
                           {summary.tool, summary.scenario,
                            summary.simulator});
    std::printf("timeseries written to %s (%zu windows)\n",
                timeseries_out_.c_str(), timeseries_->window_count());
  }
  if (!telemetry_out_.empty() && write_telemetry_) {
    const obs::RunTelemetry telemetry = obs::MakeRunTelemetry(
        summary.tool, summary.scenario, summary.wall_seconds,
        summary.events_processed, summary.jobs, summary.makespan,
        metrics_ != nullptr ? metrics_->peak_queue_depth() : 0);
    obs::WriteTelemetryFile(telemetry_out_, telemetry);
    std::printf("telemetry written to %s\n", telemetry_out_.c_str());
  }
  if (!profile_out_.empty()) {
    prof::Disarm();
    prof::WriteFile(profile_out_, summary.tool, summary.scenario);
    std::printf("profile written to %s\n", profile_out_.c_str());
  }
}

bool ApplyLogLevel(const Flags& flags) {
  const std::string value = flags.Get("log-level");
  const auto level = ParseLogLevel(value);
  if (!level) {
    std::fprintf(stderr,
                 "error: flag --log-level: unknown level '%s' "
                 "(want debug|info|warn|error|off)\n",
                 value.c_str());
    return false;
  }
  simmr::SetLogLevel(*level);
  return true;
}

}  // namespace simmr::tools
