#include "tool_common.h"

#include <cstdio>
#include <stdexcept>

namespace simmr::tools {
namespace {

bool g_last_parse_failed = false;

void PrintUsage(const std::string& program, const std::string& description,
                const std::vector<FlagSpec>& specs) {
  std::fprintf(stderr, "%s\n\nusage: %s [flags]\n", description.c_str(),
               program.c_str());
  for (const auto& spec : specs) {
    std::fprintf(stderr, "  --%-22s %s (default: %s)\n", spec.name.c_str(),
                 spec.help.c_str(),
                 spec.default_value.empty() ? "\"\""
                                            : spec.default_value.c_str());
  }
}

}  // namespace

bool Flags::LastParseFailed() { return g_last_parse_failed; }

std::optional<Flags> Flags::Parse(int argc, char** argv,
                                  const std::string& description,
                                  std::vector<FlagSpec> specs) {
  g_last_parse_failed = false;
  Flags flags;
  for (const auto& spec : specs) flags.values_[spec.name] = spec.default_value;

  const auto find_spec = [&specs](const std::string& name) -> const FlagSpec* {
    for (const auto& spec : specs) {
      if (spec.name == name) return &spec;
    }
    return nullptr;
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0], description, specs);
      return std::nullopt;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "error: unexpected argument '%s'\n", arg.c_str());
      PrintUsage(argv[0], description, specs);
      g_last_parse_failed = true;
      return std::nullopt;
    }
    arg = arg.substr(2);
    std::string value;
    const std::size_t eq = arg.find('=');
    bool have_value = false;
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      have_value = true;
    }
    const FlagSpec* spec = find_spec(arg);
    if (spec == nullptr) {
      std::fprintf(stderr, "error: unknown flag '--%s'\n", arg.c_str());
      PrintUsage(argv[0], description, specs);
      g_last_parse_failed = true;
      return std::nullopt;
    }
    if (!have_value) {
      if (spec->is_boolean) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "error: flag '--%s' needs a value\n",
                     arg.c_str());
        g_last_parse_failed = true;
        return std::nullopt;
      }
    }
    flags.values_[arg] = value;
  }
  return flags;
}

std::string Flags::Get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end())
    throw std::logic_error("Flags::Get: undeclared flag " + name);
  return it->second;
}

int Flags::GetInt(const std::string& name) const {
  const std::string value = Get(name);
  std::size_t consumed = 0;
  const int parsed = std::stoi(value, &consumed);
  if (consumed != value.size())
    throw std::invalid_argument("flag --" + name + ": bad integer '" + value +
                                "'");
  return parsed;
}

double Flags::GetDouble(const std::string& name) const {
  const std::string value = Get(name);
  std::size_t consumed = 0;
  const double parsed = std::stod(value, &consumed);
  if (consumed != value.size())
    throw std::invalid_argument("flag --" + name + ": bad number '" + value +
                                "'");
  return parsed;
}

bool Flags::GetBool(const std::string& name) const {
  const std::string value = Get(name);
  return value == "true" || value == "1" || value == "yes";
}

FlagSpec LogLevelFlag() {
  return {"log-level", "warn", "debug | info | warn | error | off"};
}

std::optional<simmr::LogLevel> ParseLogLevel(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return std::nullopt;
}

bool ApplyLogLevel(const Flags& flags) {
  const std::string value = flags.Get("log-level");
  const auto level = ParseLogLevel(value);
  if (!level) {
    std::fprintf(stderr,
                 "error: flag --log-level: unknown level '%s' "
                 "(want debug|info|warn|error|off)\n",
                 value.c_str());
    return false;
  }
  simmr::SetLogLevel(*level);
  return true;
}

}  // namespace simmr::tools
