// Minimal flag parsing shared by the command-line tools.
//
// Supports --key=value and --key value forms plus boolean --key. Unknown
// flags are errors so typos fail fast. Each tool declares its flags with
// defaults and help text; --help prints generated usage.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/metrics_observer.h"
#include "obs/trace_export.h"
#include "simcore/log.h"

namespace simmr::tools {

struct FlagSpec {
  std::string name;        // without the leading "--"
  std::string default_value;
  std::string help;
  bool is_boolean = false;
  /// Optional single-character alias, matched as "-x value" / "-x=value"
  /// (e.g. "j" lets --threads also parse as -j). Empty = no alias.
  std::string short_name = {};
};

class Flags {
 public:
  /// Parses argv against the specs. On --help prints usage and returns
  /// nullopt; on errors prints the problem + usage to stderr and returns
  /// nullopt (caller should exit nonzero via ok()).
  static std::optional<Flags> Parse(int argc, char** argv,
                                    const std::string& description,
                                    std::vector<FlagSpec> specs);

  /// True when parsing failed (as opposed to --help).
  static bool LastParseFailed();

  std::string Get(const std::string& name) const;
  int GetInt(const std::string& name) const;     // throws on non-numeric
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;   // "true"/"1" => true

 private:
  std::map<std::string, std::string> values_;
};

/// The shared --log-level flag. Every tool should include this spec and
/// call ApplyLogLevel right after parsing.
FlagSpec LogLevelFlag();

/// Parses "debug" | "info" | "warn" | "error" | "off" (case-sensitive).
std::optional<simmr::LogLevel> ParseLogLevel(std::string_view name);

/// Applies the parsed --log-level to the global logger. Returns false and
/// prints to stderr when the value is not a recognized level name.
bool ApplyLogLevel(const Flags& flags);

/// The shared observability output flags: --trace-out, --metrics-out,
/// --telemetry-out, --event-log-out and --profile-out. Tools append these
/// to their spec list and hand the parsed flags to
/// ObservabilitySinks::Init.
std::vector<FlagSpec> ObservabilityFlagSpecs();

/// The shared --threads/-j flag for tools with ParallelFor phases.
/// Default "0" = auto-detect (see ResolveThreads).
FlagSpec ThreadsFlag();

/// Worker-thread count for a tool's parallel phases, by precedence:
/// an explicit --threads/-j value > 0; else a positive SIMMR_THREADS
/// environment variable; else simmr::DefaultParallelism(). Throws
/// std::invalid_argument on a negative flag value.
int ResolveThreads(const Flags& flags);

/// Facts about a finished run that the sinks need at write-out time.
struct RunSummary {
  std::string tool;       // producing binary, e.g. "simmr_replay"
  std::string scenario;   // free-form run label, e.g. "policy=fifo jobs=6"
  std::string simulator;  // "simmr" | "testbed" | "mumak" | ""
  double wall_seconds = 0.0;
  std::uint64_t events_processed = 0;
  std::uint64_t jobs = 0;
  double makespan = 0.0;
};

/// Owns the observer stack a tool attaches when any observability output
/// was requested: a MetricsObserver (for --metrics-out / --telemetry-out),
/// a TraceExporter (--trace-out) and an EventLogObserver (--event-log-out)
/// fanned out through one MulticastObserver. When no output flag is set,
/// observer() is nullptr and the simulators keep their no-observer fast
/// path. Not movable: the registry is referenced by the metrics observer.
class ObservabilitySinks {
 public:
  ObservabilitySinks() = default;
  ObservabilitySinks(const ObservabilitySinks&) = delete;
  ObservabilitySinks& operator=(const ObservabilitySinks&) = delete;

  /// Reads the ObservabilityFlagSpecs values and builds the requested
  /// observers. When --profile-out is set, resets and arms the in-process
  /// profiler (prof/profiler.h) — profiling is process-wide, so call this
  /// right before the measured run.
  void Init(const Flags& flags);

  /// The observer to attach, or nullptr when nothing was requested.
  obs::SimObserver* observer() {
    return multicast_.Empty() ? nullptr : &multicast_;
  }

  obs::MetricsObserver* metrics() { return metrics_.get(); }
  obs::EventLogObserver* event_log() { return event_log_.get(); }

  /// Writes every requested output file and prints one
  /// "<kind> written to <path>" line per file to stdout.
  /// Throws std::runtime_error on I/O failure.
  void Write(const RunSummary& summary);

 private:
  std::string trace_out_, metrics_out_, telemetry_out_, event_log_out_;
  std::string profile_out_;
  obs::MetricsRegistry registry_;
  std::unique_ptr<obs::MetricsObserver> metrics_;
  std::unique_ptr<obs::TraceExporter> trace_;
  std::unique_ptr<obs::EventLogObserver> event_log_;
  obs::MulticastObserver multicast_;
};

}  // namespace simmr::tools
