// Minimal flag parsing shared by the command-line tools.
//
// Supports --key=value and --key value forms plus boolean --key. Unknown
// flags are errors so typos fail fast. Each tool declares its flags with
// defaults and help text; --help prints generated usage.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "simcore/log.h"

namespace simmr::tools {

struct FlagSpec {
  std::string name;        // without the leading "--"
  std::string default_value;
  std::string help;
  bool is_boolean = false;
};

class Flags {
 public:
  /// Parses argv against the specs. On --help prints usage and returns
  /// nullopt; on errors prints the problem + usage to stderr and returns
  /// nullopt (caller should exit nonzero via ok()).
  static std::optional<Flags> Parse(int argc, char** argv,
                                    const std::string& description,
                                    std::vector<FlagSpec> specs);

  /// True when parsing failed (as opposed to --help).
  static bool LastParseFailed();

  std::string Get(const std::string& name) const;
  int GetInt(const std::string& name) const;     // throws on non-numeric
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;   // "true"/"1" => true

 private:
  std::map<std::string, std::string> values_;
};

/// The shared --log-level flag. Every tool should include this spec and
/// call ApplyLogLevel right after parsing.
FlagSpec LogLevelFlag();

/// Parses "debug" | "info" | "warn" | "error" | "off" (case-sensitive).
std::optional<simmr::LogLevel> ParseLogLevel(std::string_view name);

/// Applies the parsed --log-level to the global logger. Returns false and
/// prints to stderr when the value is not a recognized level name.
bool ApplyLogLevel(const Flags& flags);

}  // namespace simmr::tools
