// Minimal flag parsing shared by the command-line tools.
//
// Supports --key=value and --key value forms plus boolean --key. Unknown
// flags are errors so typos fail fast. Each tool declares its flags with
// defaults and help text; --help prints generated usage.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event_log.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/metrics_observer.h"
#include "obs/timeseries.h"
#include "obs/trace_export.h"
#include "simcore/log.h"

namespace simmr::tools {

struct FlagSpec {
  std::string name;        // without the leading "--"
  std::string default_value;
  std::string help;
  bool is_boolean = false;
  /// Optional single-character alias, matched as "-x value" / "-x=value"
  /// (e.g. "j" lets --threads also parse as -j). Empty = no alias.
  std::string short_name = {};
};

class Flags {
 public:
  /// Parses argv against the specs. On --help prints usage and returns
  /// nullopt; on errors prints the problem + usage to stderr and returns
  /// nullopt (caller should exit nonzero via ok()).
  static std::optional<Flags> Parse(int argc, char** argv,
                                    const std::string& description,
                                    std::vector<FlagSpec> specs);

  /// True when parsing failed (as opposed to --help).
  static bool LastParseFailed();

  std::string Get(const std::string& name) const;
  int GetInt(const std::string& name) const;     // throws on non-numeric
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;   // "true"/"1" => true

 private:
  std::map<std::string, std::string> values_;
};

/// The shared --log-level flag. Every tool should include this spec and
/// call ApplyLogLevel right after parsing.
FlagSpec LogLevelFlag();

/// Parses "debug" | "info" | "warn" | "error" | "off" (case-sensitive).
std::optional<simmr::LogLevel> ParseLogLevel(std::string_view name);

/// Applies the parsed --log-level to the global logger. Returns false and
/// prints to stderr when the value is not a recognized level name.
bool ApplyLogLevel(const Flags& flags);

/// The shared observability flags: --trace-out, --metrics-out,
/// --telemetry-out, --event-log-out, --profile-out, --timeseries-out,
/// --timeseries-window and --serve-metrics. Tools append these to their
/// spec list and hand the parsed flags to ObservabilitySinks::Init.
std::vector<FlagSpec> ObservabilityFlagSpecs();

/// Inserts ".variant" before `path`'s final extension ("r.json" ->
/// "r.simmr.json"); an extensionless path gets ".variant" plus
/// `default_ext` appended ("cmp" -> "cmp.simmr.jsonl"). An empty variant
/// returns the path unchanged. Used by simmr_compare to derive one output
/// file per simulator from a single flag value.
std::string VariantPath(const std::string& path, const std::string& variant,
                        const std::string& default_ext = "");

/// The shared --threads/-j flag for tools with ParallelFor phases.
/// Default "0" = auto-detect (see ResolveThreads).
FlagSpec ThreadsFlag();

/// Worker-thread count for a tool's parallel phases, by precedence:
/// an explicit --threads/-j value > 0; else a positive SIMMR_THREADS
/// environment variable; else simmr::DefaultParallelism(). Throws
/// std::invalid_argument on a negative flag value.
int ResolveThreads(const Flags& flags);

/// Seed-flag convention shared by the seeded tools: a decimal uint64 is
/// used as-is, anything else (a git SHA, a test name) is FNV-1a-hashed to
/// one — CI seeds each run from the commit.
std::uint64_t ResolveSeed(const std::string& text);

/// Facts about a finished run that the sinks need at write-out time.
struct RunSummary {
  std::string tool;       // producing binary, e.g. "simmr_replay"
  std::string scenario;   // free-form run label, e.g. "policy=fifo jobs=6"
  std::string simulator;  // "simmr" | "testbed" | "mumak" | ""
  double wall_seconds = 0.0;
  std::uint64_t events_processed = 0;
  std::uint64_t jobs = 0;
  double makespan = 0.0;
};

/// Live-run progress shared between the simulating thread(s) and the
/// --serve-metrics endpoint: tools bump the atomics as sessions finish;
/// /progress renders them with a wall clock and a throughput ETA.
struct LiveRunState {
  std::atomic<std::uint64_t> sessions_completed{0};
  std::atomic<std::uint64_t> sessions_total{0};
  std::atomic<std::uint64_t> events_processed{0};
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
};

/// Per-instance tweaks for ObservabilitySinks::Init, used by tools that
/// own more than one sinks stack (simmr_compare runs two simulators from
/// one flag set).
struct SinkInitOptions {
  /// Applied to every output path via VariantPath (empty = paths as
  /// given). --profile-out is exempt: the profiler is process-wide.
  std::string variant;
  /// Arm the process-wide profiler for --profile-out. Exactly one sinks
  /// instance per process should keep this on.
  bool arm_profiler = true;
  /// Start the --serve-metrics server from this instance (at most one
  /// instance per flag value can bind the port).
  bool serve = true;
  /// Write --telemetry-out at Write(). simmr_compare disables this and
  /// writes its own merged two-simulator telemetry instead.
  bool write_telemetry = true;
};

/// Owns the observer stack a tool attaches when any observability output
/// was requested: a TimeSeriesSampler (--timeseries-out), a
/// MetricsObserver (--metrics-out / --telemetry-out / --serve-metrics), a
/// TraceExporter (--trace-out) and an EventLogObserver (--event-log-out)
/// fanned out through one MulticastObserver. When no output flag is set,
/// observer() is nullptr and the simulators keep their no-observer fast
/// path.
///
/// With --serve-metrics, Init() also starts a MetricsHttpServer and wraps
/// the fan-out in a LockingObserver so the HTTP thread can snapshot the
/// registry under the same mutex; the server is joined by Write() (or the
/// destructor) before any output file is produced. Not movable: the
/// registry is referenced by the metrics observer and the server.
class ObservabilitySinks {
 public:
  ObservabilitySinks() = default;
  ObservabilitySinks(const ObservabilitySinks&) = delete;
  ObservabilitySinks& operator=(const ObservabilitySinks&) = delete;
  ~ObservabilitySinks();

  /// Reads the ObservabilityFlagSpecs values and builds the requested
  /// observers. When --profile-out is set, resets and arms the in-process
  /// profiler (prof/profiler.h) — profiling is process-wide, so call this
  /// right before the measured run. When --serve-metrics is set, binds
  /// and starts the HTTP server immediately and prints
  /// "serving metrics on port <port>" (port 0 = kernel-picked, for
  /// tests). Throws std::runtime_error / std::invalid_argument on bad
  /// flag values or socket failure.
  void Init(const Flags& flags);
  void Init(const Flags& flags, const SinkInitOptions& options);

  /// The observer to attach, or nullptr when nothing was requested.
  obs::SimObserver* observer() {
    if (locked_ != nullptr) return locked_.get();
    return multicast_.Empty() ? nullptr : &multicast_;
  }

  obs::MetricsObserver* metrics() { return metrics_.get(); }
  obs::EventLogObserver* event_log() { return event_log_.get(); }
  obs::TimeSeriesSampler* timeseries() { return timeseries_.get(); }

  /// Progress counters for /progress; tools with session loops update
  /// sessions_total before and sessions_completed during the run.
  LiveRunState& live() { return live_; }

  bool serving() const { return server_ != nullptr; }
  /// Bound port while serving, -1 otherwise.
  int server_port() const {
    return server_ != nullptr ? server_->port() : -1;
  }

  /// Forwards the configured slot counts to the sampler so per-window
  /// utilization can be emitted. No-op without --timeseries-out.
  void SetSlotConfig(int map_slots, int reduce_slots);

  /// Joins the metrics server (if any), then writes every requested
  /// output file and prints one "<kind> written to <path>" line per file
  /// to stdout. Throws std::runtime_error on I/O failure.
  void Write(const RunSummary& summary);

 private:
  obs::LiveProgress MakeProgress() const;

  std::string trace_out_, metrics_out_, telemetry_out_, event_log_out_;
  std::string profile_out_, timeseries_out_;
  bool write_telemetry_ = true;
  obs::MetricsRegistry registry_;
  std::unique_ptr<obs::MetricsObserver> metrics_;
  std::unique_ptr<obs::TraceExporter> trace_;
  std::unique_ptr<obs::EventLogObserver> event_log_;
  std::unique_ptr<obs::TimeSeriesSampler> timeseries_;
  obs::MulticastObserver multicast_;

  // Live serving. The mutex serializes the simulation thread's registry
  // writes (via locked_) against /metrics snapshots; declared before the
  // server so the server (and its thread) is destroyed first.
  std::mutex registry_mu_;
  LiveRunState live_;
  std::unique_ptr<obs::LockingObserver> locked_;
  std::unique_ptr<obs::MetricsHttpServer> server_;
};

}  // namespace simmr::tools
