// simmr_analyze: offline analysis of durable event logs
// (simmr.eventlog.v1, written by --event-log-out).
//
//   simmr_analyze report --log=run.jsonl
//   simmr_analyze critical-path --log=run.jsonl --job=2
//   simmr_analyze utilization --log=run.jsonl --map-slots=16
//   simmr_analyze diff --a=run.simmr.jsonl --b=run.mumak.jsonl --json
//   simmr_analyze availability --log=faulted.jsonl --baseline=clean.jsonl
//   simmr_analyze perf-diff --baseline=BENCH_main.json --candidate=BENCH_pr.json
//   simmr_analyze sweep-diff --baseline=sweep_a.json --candidate=sweep_b.json
//   simmr_analyze explore --summary=explore.json
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/availability.h"
#include "analysis/json_value.h"
#include "analysis/perf_diff.h"
#include "analysis/report.h"
#include "analysis/run_diff.h"
#include "analysis/run_record.h"
#include "analysis/sweep_diff.h"
#include "analysis/timeline.h"
#include "tool_common.h"

namespace {

void PrintTopUsage() {
  std::fprintf(
      stderr,
      "usage: simmr_analyze <subcommand> [flags]\n\n"
      "subcommands:\n"
      "  report         run summary, per-job phase breakdown and\n"
      "                 deadline-miss attribution\n"
      "  critical-path  the task chain that bounded each job's completion\n"
      "  utilization    slot utilization and a phase-occupancy timeline\n"
      "  diff           structural diff of two runs (first divergence,\n"
      "                 per-job completion deltas, dominant phase)\n"
      "  availability   fault-plan damage report: node downtime, killed\n"
      "                 and re-executed work, per-job completion penalty\n"
      "                 vs an optional fault-free --baseline log\n"
      "  perf-diff      noise-aware comparison of two bench suites\n"
      "                 (BENCH_*.json); exits 4 on a regression\n"
      "  timeline       per-window utilization / queue-depth / running-task\n"
      "                 tables and a straggler summary from a\n"
      "                 simmr.timeseries.v1 file (--timeseries-out)\n"
      "  sweep-diff     behaviour-drift gate over two simmr.sweep.v1\n"
      "                 documents; exits 4 on drift, 1 on grid mismatch\n"
      "  explore        summary of a simmr.explore.v1 document\n"
      "                 (simmr_explore --out)\n\n"
      "run 'simmr_analyze <subcommand> --help' for the subcommand's flags.\n");
}

simmr::tools::FlagSpec JsonFlag() {
  return {"json", "false", "emit JSON instead of the text report", true};
}

simmr::analysis::AnalyzeOptions OptionsFrom(const simmr::tools::Flags& flags,
                                            bool with_slots) {
  simmr::analysis::AnalyzeOptions opt;
  opt.json = flags.GetBool("json");
  if (with_slots) {
    opt.map_slots = flags.GetInt("map-slots");
    opt.reduce_slots = flags.GetInt("reduce-slots");
    opt.step = flags.GetDouble("step");
  } else {
    opt.job = flags.GetInt("job");
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace simmr;
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0) {
    PrintTopUsage();
    return argc < 2 ? 1 : 0;
  }
  const std::string sub = argv[1];
  // The subcommand becomes argv[0] of the shifted vector, so --help prints
  // it as the program name.
  argc -= 1;
  argv += 1;

  try {
    if (sub == "report" || sub == "critical-path") {
      const auto flags = tools::Flags::Parse(
          argc, argv,
          sub == "report"
              ? "Summarizes one event log: per-job phase breakdown, wave\n"
                "counts and deadline-miss attribution via the ARIA bounds."
              : "Extracts each job's critical path: the chain of task phase\n"
                "segments that bounded its completion.",
          {
              {"log", "run.jsonl", "input event-log path"},
              {"job", "-1", "restrict to this job id (-1 = all)"},
              JsonFlag(),
              tools::LogLevelFlag(),
          });
      if (!flags) return tools::Flags::LastParseFailed() ? 1 : 0;
      if (!tools::ApplyLogLevel(*flags)) return 1;
      const auto record = analysis::RunRecord::Load(flags->Get("log"));
      const auto opt = OptionsFrom(*flags, /*with_slots=*/false);
      std::fputs(sub == "report"
                     ? analysis::RenderReport(record, opt).c_str()
                     : analysis::RenderCriticalPath(record, opt).c_str(),
                 stdout);
      if (opt.json) std::fputc('\n', stdout);
      return 0;
    }

    if (sub == "utilization") {
      const auto flags = tools::Flags::Parse(
          argc, argv,
          "Reports slot utilization and a phase-occupancy timeline for one\n"
          "event log. Slot counts default to the observed peak concurrency\n"
          "(the log does not record the cluster configuration).",
          {
              {"log", "run.jsonl", "input event-log path"},
              {"map-slots", "0", "map slots (0 = observed peak)"},
              {"reduce-slots", "0", "reduce slots (0 = observed peak)"},
              {"step", "0", "timeline sampling step, s (0 = makespan/20)"},
              JsonFlag(),
              tools::LogLevelFlag(),
          });
      if (!flags) return tools::Flags::LastParseFailed() ? 1 : 0;
      if (!tools::ApplyLogLevel(*flags)) return 1;
      const auto record = analysis::RunRecord::Load(flags->Get("log"));
      const auto opt = OptionsFrom(*flags, /*with_slots=*/true);
      std::fputs(analysis::RenderUtilization(record, opt).c_str(), stdout);
      if (opt.json) std::fputc('\n', stdout);
      return 0;
    }

    if (sub == "availability") {
      const auto flags = tools::Flags::Parse(
          argc, argv,
          "Reports what a fault plan cost a run: per-node downtime from\n"
          "the NODE_LOST/NODE_RESTORED records, killed attempts and\n"
          "wasted attempt-seconds, re-executed map outputs, and — when a\n"
          "fault-free event log of the same workload is given via\n"
          "--baseline — each job's completion-time penalty and the\n"
          "makespan penalty.",
          {
              {"log", "run.jsonl", "faulted event-log path"},
              {"baseline", "",
               "optional fault-free event log of the same workload"},
              {"job", "-1", "restrict to this job id (-1 = all)"},
              JsonFlag(),
              tools::LogLevelFlag(),
          });
      if (!flags) return tools::Flags::LastParseFailed() ? 1 : 0;
      if (!tools::ApplyLogLevel(*flags)) return 1;
      const auto record = analysis::RunRecord::Load(flags->Get("log"));
      analysis::RunRecord baseline;
      const bool with_baseline = !flags->Get("baseline").empty();
      if (with_baseline)
        baseline = analysis::RunRecord::Load(flags->Get("baseline"));
      const auto report = analysis::BuildAvailabilityReport(
          record, with_baseline ? &baseline : nullptr);
      const auto opt = OptionsFrom(*flags, /*with_slots=*/false);
      std::fputs(analysis::RenderAvailability(report, opt).c_str(), stdout);
      if (opt.json) std::fputc('\n', stdout);
      return 0;
    }

    if (sub == "diff") {
      const auto flags = tools::Flags::Parse(
          argc, argv,
          "Structurally diffs two event logs: aligns jobs, reports the\n"
          "first divergence and attributes per-job completion deltas to\n"
          "map/shuffle/reduce via per-attempt averages. Exits 0 when the\n"
          "runs are identical, 3 when they differ.",
          {
              {"a", "", "first event-log path (baseline)"},
              {"b", "", "second event-log path"},
              JsonFlag(),
              tools::LogLevelFlag(),
          });
      if (!flags) return tools::Flags::LastParseFailed() ? 1 : 0;
      if (!tools::ApplyLogLevel(*flags)) return 1;
      if (flags->Get("a").empty() || flags->Get("b").empty()) {
        std::fprintf(stderr, "error: diff needs both --a and --b\n");
        return 1;
      }
      const auto record_a = analysis::RunRecord::Load(flags->Get("a"));
      const auto record_b = analysis::RunRecord::Load(flags->Get("b"));
      const auto diff = analysis::DiffRuns(record_a, record_b);
      analysis::AnalyzeOptions opt;
      opt.json = flags->GetBool("json");
      std::fputs(analysis::RenderDiff(diff, opt).c_str(), stdout);
      if (opt.json) std::fputc('\n', stdout);
      return diff.identical ? 0 : 3;
    }

    if (sub == "perf-diff") {
      const auto flags = tools::Flags::Parse(
          argc, argv,
          "Compares two bench-suite documents (simmr.benchsuite.v1/v2,\n"
          "written by bench/run_benches.sh). A metric regresses when its\n"
          "direction-adjusted delta exceeds the threshold AND the 95%\n"
          "confidence intervals are disjoint; point metrics count as\n"
          "zero-width intervals. Exits 0 when clean, 4 on any regression,\n"
          "1 on structural errors (missing runs, NaN metrics, bad input).",
          {
              {"baseline", "", "baseline BENCH_*.json path"},
              {"candidate", "", "candidate BENCH_*.json path"},
              {"threshold", "0.10",
               "relative delta that counts as a regression"},
              JsonFlag(),
              tools::LogLevelFlag(),
          });
      if (!flags) return tools::Flags::LastParseFailed() ? 1 : 0;
      if (!tools::ApplyLogLevel(*flags)) return 1;
      if (flags->Get("baseline").empty() || flags->Get("candidate").empty()) {
        std::fprintf(stderr,
                     "error: perf-diff needs both --baseline and "
                     "--candidate\n");
        return 1;
      }
      analysis::PerfDiffOptions opt;
      opt.threshold = flags->GetDouble("threshold");
      opt.json = flags->GetBool("json");
      if (!(opt.threshold > 0.0)) {
        std::fprintf(stderr, "error: --threshold must be positive\n");
        return 1;
      }
      const auto baseline =
          analysis::LoadBenchSuite(flags->Get("baseline"));
      const auto candidate =
          analysis::LoadBenchSuite(flags->Get("candidate"));
      const auto result = analysis::DiffBenchSuites(baseline, candidate, opt);
      std::fputs(analysis::RenderPerfDiff(result, opt).c_str(), stdout);
      if (opt.json) std::fputc('\n', stdout);
      return analysis::PerfDiffExitCode(result);
    }

    if (sub == "timeline") {
      const auto flags = tools::Flags::Parse(
          argc, argv,
          "Renders a simmr.timeseries.v1 file (--timeseries-out) as\n"
          "per-window utilization, queue-depth and running-task tables,\n"
          "plus a straggler summary: windows whose task-duration p99\n"
          "diverged from the median (a few tasks running far longer than\n"
          "their peers). --json emits one simmr.timeline.v1 document.",
          {
              {"timeseries", "timeseries.jsonl",
               "input simmr.timeseries.v1 path"},
              {"straggler-factor", "3",
               "flag windows where p99 >= factor * p50"},
              {"min-completions", "5",
               "ignore windows with fewer task completions than this"},
              JsonFlag(),
              tools::LogLevelFlag(),
          });
      if (!flags) return tools::Flags::LastParseFailed() ? 1 : 0;
      if (!tools::ApplyLogLevel(*flags)) return 1;
      analysis::TimelineOptions opt;
      opt.json = flags->GetBool("json");
      opt.straggler_factor = flags->GetDouble("straggler-factor");
      opt.min_completions =
          static_cast<std::uint64_t>(flags->GetInt("min-completions"));
      if (!(opt.straggler_factor >= 1.0)) {
        std::fprintf(stderr, "error: --straggler-factor must be >= 1\n");
        return 1;
      }
      const auto timeline =
          analysis::LoadTimeline(flags->Get("timeseries"));
      std::fputs(analysis::RenderTimeline(timeline, opt).c_str(), stdout);
      if (opt.json) std::fputc('\n', stdout);
      return 0;
    }

    if (sub == "sweep-diff") {
      const auto flags = tools::Flags::Parse(
          argc, argv,
          "Compares two simmr.sweep.v1 documents cell-by-cell. Cell\n"
          "aggregates are deterministic sim-time quantities, so the\n"
          "default threshold is exact: any per-metric relative delta\n"
          "beyond --threshold is behaviour drift. Exits 0 when clean, 4 on\n"
          "drift, 1 on structural errors (mismatched grids, bad input).",
          {
              {"baseline", "", "baseline simmr.sweep.v1 path"},
              {"candidate", "", "candidate simmr.sweep.v1 path"},
              {"threshold", "0",
               "max relative per-metric delta that still passes (0 = exact)"},
              JsonFlag(),
              tools::LogLevelFlag(),
          });
      if (!flags) return tools::Flags::LastParseFailed() ? 1 : 0;
      if (!tools::ApplyLogLevel(*flags)) return 1;
      if (flags->Get("baseline").empty() || flags->Get("candidate").empty()) {
        std::fprintf(stderr,
                     "error: sweep-diff needs both --baseline and "
                     "--candidate\n");
        return 1;
      }
      analysis::SweepDiffOptions opt;
      opt.threshold = flags->GetDouble("threshold");
      opt.json = flags->GetBool("json");
      if (opt.threshold < 0.0) {
        std::fprintf(stderr, "error: --threshold must be >= 0\n");
        return 1;
      }
      const auto baseline = analysis::LoadSweepDoc(flags->Get("baseline"));
      const auto candidate = analysis::LoadSweepDoc(flags->Get("candidate"));
      const auto result = analysis::DiffSweepDocs(baseline, candidate, opt);
      std::fputs(analysis::RenderSweepDiff(result, opt).c_str(), stdout);
      if (opt.json) std::fputc('\n', stdout);
      return analysis::SweepDiffExitCode(result);
    }

    if (sub == "explore") {
      const auto flags = tools::Flags::Parse(
          argc, argv,
          "Summarizes a simmr.explore.v1 document (simmr_explore --out):\n"
          "coverage, pruning effectiveness and any recorded violations.",
          {
              {"summary", "explore.json", "input simmr.explore.v1 path"},
              tools::LogLevelFlag(),
          });
      if (!flags) return tools::Flags::LastParseFailed() ? 1 : 0;
      if (!tools::ApplyLogLevel(*flags)) return 1;
      std::ifstream in(flags->Get("summary"));
      if (!in) {
        std::fprintf(stderr, "error: cannot open %s\n",
                     flags->Get("summary").c_str());
        return 1;
      }
      std::stringstream buffer;
      buffer << in.rdbuf();
      const analysis::JsonValue doc =
          analysis::JsonValue::Parse(buffer.str());
      if (doc.StringOr("format_version", "") != "simmr.explore.v1") {
        std::fprintf(stderr, "error: %s is not a simmr.explore.v1 document\n",
                     flags->Get("summary").c_str());
        return 1;
      }
      const analysis::JsonValue* stats = doc.Find("stats");
      const analysis::JsonValue* options = doc.Find("options");
      if (stats == nullptr || options == nullptr) {
        std::fprintf(stderr, "error: explore document missing stats\n");
        return 1;
      }
      const double explored = stats->NumberOr("transitions_explored", 0);
      const double pruned = stats->NumberOr("transitions_pruned", 0);
      const double considered = explored + pruned;
      const analysis::JsonValue* exhausted = stats->Find("exhausted");
      std::printf("exploration of scenario '%s' (seed %.0f, depth %.0f, "
                  "budget %.0f)\n",
                  doc.StringOr("scenario", "?").c_str(),
                  options->NumberOr("seed", 0),
                  options->NumberOr("depth", 0),
                  options->NumberOr("budget", 0));
      std::printf("  executions:      %.0f (dfs %.0f, random %.0f), %s\n",
                  stats->NumberOr("executions", 0),
                  stats->NumberOr("dfs_executions", 0),
                  stats->NumberOr("random_executions", 0),
                  exhausted != nullptr && exhausted->IsBool() &&
                          exhausted->AsBool()
                      ? "exhausted"
                      : "budget reached");
      std::printf("  choice points:   %.0f (widest tie %.0f, frontier high "
                  "water %.0f)\n",
                  stats->NumberOr("choice_points", 0),
                  stats->NumberOr("deepest_tie", 0),
                  stats->NumberOr("frontier_high_water", 0));
      std::printf("  transitions:     %.0f explored, %.0f pruned (%.1f%%), "
                  "%.0f sleep-blocked\n",
                  explored, pruned,
                  considered > 0 ? 100.0 * pruned / considered : 0.0,
                  stats->NumberOr("sleep_blocked", 0));
      std::printf("  terminal states: %.0f distinct\n",
                  stats->NumberOr("distinct_terminals", 0));
      const analysis::JsonValue* violations = doc.Find("violations");
      const std::size_t violation_count =
          violations != nullptr && violations->IsArray()
              ? violations->AsArray().size()
              : 0;
      std::printf("  violations:      %zu\n", violation_count);
      if (violation_count != 0) {
        for (const analysis::JsonValue& v : violations->AsArray())
          std::printf("    [%s] %s\n", v.StringOr("property", "?").c_str(),
                      v.StringOr("detail", "?").c_str());
      }
      return 0;
    }

    std::fprintf(stderr, "error: unknown subcommand '%s'\n\n", sub.c_str());
    PrintTopUsage();
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
