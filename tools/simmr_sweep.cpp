// simmr_sweep: parameter-grid sweeps over the SimMR engine, run in
// parallel across worker threads.
//
// The grid is the cross product of --policies x --slots x
// --arrival-scales x --replicates; every grid point becomes one
// SimSession replay with its own deterministically derived RNG stream, so
// the per-session results are bit-identical no matter how many threads
// run the sweep (--threads/-j, or the SIMMR_THREADS environment
// variable — an explicit flag wins over the environment, and 0 means
// hardware concurrency).
//
//   simmr_sweep --db=traces/ --policies=fifo,minedf --slots=64x64,32x32
//               --arrival-scales=0.5,1,2 --replicates=3 -j 8
//               --out=sweep.json
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/result_stats.h"
#include "backend/session.h"
#include "obs/json.h"
#include "simcore/parallel.h"
#include "simcore/rng.h"
#include "tool_common.h"

namespace {

using namespace simmr;

// One grid point: everything that varies between sessions.
struct SweepPoint {
  std::string policy;
  int map_slots = 0;
  int reduce_slots = 0;
  double arrival_scale = 1.0;
  int replicate = 0;
  std::uint64_t seed = 0;
};

// One grid point's outcome, reduced to reportable numbers.
struct SweepRecord {
  SweepPoint point;
  analysis::ResultSummary summary;
};

std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

// Parses one "MxR" slot configuration, e.g. "64x64" or "32x8".
std::pair<int, int> ParseSlots(const std::string& text) {
  const std::size_t x = text.find('x');
  if (x == std::string::npos || x == 0 || x + 1 >= text.size())
    throw std::invalid_argument("flag --slots: want MxR, got '" + text + "'");
  try {
    std::size_t consumed = 0;
    const int maps = std::stoi(text.substr(0, x), &consumed);
    if (consumed != x) throw std::invalid_argument(text);
    const std::string reduces_text = text.substr(x + 1);
    const int reduces = std::stoi(reduces_text, &consumed);
    if (consumed != reduces_text.size()) throw std::invalid_argument(text);
    if (maps <= 0 || reduces <= 0) throw std::invalid_argument(text);
    return {maps, reduces};
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --slots: want MxR, got '" + text + "'");
  }
}

std::string FormatSlots(const SweepPoint& p) {
  return std::to_string(p.map_slots) + "x" + std::to_string(p.reduce_slots);
}

void WriteSweepJson(const std::string& path, const tools::Flags& flags,
                    const std::vector<std::string>& policies,
                    const std::vector<std::string>& slot_names,
                    const std::vector<double>& arrival_scales, int replicates,
                    unsigned threads, double wall_seconds,
                    const std::vector<SweepRecord>& records) {
  std::string out;
  out += "{\n  \"format_version\": \"simmr.sweep.v1\",\n";
  out += "  \"tool\": \"simmr_sweep\",\n";
  out += "  \"db\": \"" + obs::JsonEscape(flags.Get("db")) + "\",\n";
  out += "  \"grid\": {\n    \"policies\": [";
  for (std::size_t i = 0; i < policies.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + obs::JsonEscape(policies[i]) + "\"";
  }
  out += "],\n    \"slots\": [";
  for (std::size_t i = 0; i < slot_names.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + obs::JsonEscape(slot_names[i]) + "\"";
  }
  out += "],\n    \"arrival_scales\": [";
  for (std::size_t i = 0; i < arrival_scales.size(); ++i) {
    if (i != 0) out += ", ";
    out += obs::JsonNumber(arrival_scales[i]);
  }
  out += "],\n";
  out += "    \"replicates\": " + std::to_string(replicates) + ",\n";
  out += "    \"jobs\": " + std::to_string(flags.GetInt("jobs")) + ",\n";
  out += "    \"mean_interarrival_s\": " +
         obs::JsonNumber(flags.GetDouble("mean-interarrival")) + ",\n";
  out += "    \"deadline_factor\": " +
         obs::JsonNumber(flags.GetDouble("deadline-factor")) + ",\n";
  out += "    \"slowstart\": " + obs::JsonNumber(flags.GetDouble("slowstart")) +
         ",\n";
  out += "    \"seed\": " + std::to_string(flags.GetInt("seed")) + "\n  },\n";
  out += "  \"threads\": " + std::to_string(threads) + ",\n";
  out += "  \"wall_seconds\": " + obs::JsonNumber(wall_seconds) + ",\n";
  out += "  \"sessions\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const SweepPoint& p = records[i].point;
    const analysis::ResultSummary& s = records[i].summary;
    out += "    {\"session\": " + std::to_string(i) + ", \"policy\": \"" +
           obs::JsonEscape(p.policy) + "\"";
    out += ", \"map_slots\": " + std::to_string(p.map_slots);
    out += ", \"reduce_slots\": " + std::to_string(p.reduce_slots);
    out += ", \"arrival_scale\": " + obs::JsonNumber(p.arrival_scale);
    out += ", \"replicate\": " + std::to_string(p.replicate);
    out += ", \"seed\": " + std::to_string(p.seed);
    out += ", \"jobs\": " + std::to_string(s.jobs);
    out += ", \"events\": " + std::to_string(s.events_processed);
    out += ", \"makespan_s\": " + obs::JsonNumber(s.makespan);
    out += ", \"mean_completion_s\": " + obs::JsonNumber(s.mean_completion_s);
    out += ", \"max_completion_s\": " + obs::JsonNumber(s.max_completion_s);
    out += ", \"deadline_utility\": " + obs::JsonNumber(s.deadline_utility);
    out += ", \"missed_deadlines\": " + std::to_string(s.missed_deadlines);
    out += ", \"map_utilization\": " +
           obs::JsonNumber(s.utilization.map_utilization);
    out += ", \"reduce_utilization\": " +
           obs::JsonNumber(s.utilization.reduce_utilization);
    out += i + 1 < records.size() ? "},\n" : "}\n";
  }
  out += "  ],\n  \"cells\": [\n";
  // Aggregate replicates per grid cell, in session order (replicate is the
  // innermost grid dimension, so each cell is a contiguous run).
  std::string cells;
  for (std::size_t i = 0; i < records.size();
       i += static_cast<std::size_t>(replicates)) {
    const SweepPoint& p = records[i].point;
    double makespan = 0.0, utility = 0.0, completion = 0.0, missed = 0.0;
    for (int r = 0; r < replicates; ++r) {
      const analysis::ResultSummary& s =
          records[i + static_cast<std::size_t>(r)].summary;
      makespan += s.makespan;
      utility += s.deadline_utility;
      completion += s.mean_completion_s;
      missed += s.missed_deadlines;
    }
    const double n = static_cast<double>(replicates);
    if (!cells.empty()) cells += ",\n";
    cells += "    {\"policy\": \"" + obs::JsonEscape(p.policy) + "\"";
    cells += ", \"slots\": \"" + FormatSlots(p) + "\"";
    cells += ", \"arrival_scale\": " + obs::JsonNumber(p.arrival_scale);
    cells += ", \"replicates\": " + std::to_string(replicates);
    cells += ", \"mean_makespan_s\": " + obs::JsonNumber(makespan / n);
    cells += ", \"mean_completion_s\": " + obs::JsonNumber(completion / n);
    cells += ", \"mean_deadline_utility\": " + obs::JsonNumber(utility / n);
    cells += ", \"mean_missed_deadlines\": " + obs::JsonNumber(missed / n);
    cells += "}";
  }
  out += cells + "\n  ]\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    throw std::runtime_error("simmr_sweep: cannot open " + path);
  std::fwrite(out.data(), 1, out.size(), f);
  if (std::fclose(f) != 0)
    throw std::runtime_error("simmr_sweep: write failed for " + path);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<tools::FlagSpec> specs = {
      {"db", "traces", "trace-database directory"},
      {"policies", "fifo",
       "comma list of policies (fifo | maxedf | minedf | fair | capacity)"},
      {"slots", "64x64", "comma list of MxR slot configurations"},
      {"arrival-scales", "1",
       "comma list of inter-arrival multipliers (scales --mean-interarrival)"},
      {"replicates", "1", "randomized replays per grid cell"},
      {"jobs", "0", "jobs per session (0 = one instance of each profile)"},
      {"mean-interarrival", "100",
       "exponential arrival mean, s (0 = all at t=0)"},
      {"deadline-factor", "0", "df >= 1 enables deadlines in [T, df*T]"},
      {"slowstart", "0.05", "minMapPercentCompleted gate"},
      {"seed", "42", "master seed; per-session streams are split from it"},
      {"out", "", "optional simmr.sweep.v1 JSON output path"},
      tools::ThreadsFlag(),
      tools::LogLevelFlag(),
  };
  for (auto& spec : tools::ObservabilityFlagSpecs()) specs.push_back(spec);
  const auto flags = tools::Flags::Parse(
      argc, argv,
      "Runs a parameter-grid sweep (policies x slots x arrival scales x\n"
      "replicates) of SimMR replays over a trace database, parallelized\n"
      "across worker threads with deterministic per-session RNG streams,\n"
      "and reports per-cell aggregates (simmr.sweep.v1 JSON via --out).",
      std::move(specs));
  if (!flags) return tools::Flags::LastParseFailed() ? 1 : 0;
  if (!tools::ApplyLogLevel(*flags)) return 1;

  try {
    const std::vector<std::string> policies =
        SplitList(flags->Get("policies"));
    const std::vector<std::string> slot_names = SplitList(flags->Get("slots"));
    const std::vector<std::string> scale_names =
        SplitList(flags->Get("arrival-scales"));
    const int replicates = flags->GetInt("replicates");
    if (policies.empty() || slot_names.empty() || scale_names.empty() ||
        replicates <= 0) {
      std::fprintf(stderr,
                   "error: --policies, --slots, --arrival-scales must be "
                   "non-empty and --replicates positive\n");
      return 1;
    }
    std::vector<std::pair<int, int>> slot_configs;
    for (const std::string& name : slot_names)
      slot_configs.push_back(ParseSlots(name));
    std::vector<double> arrival_scales;
    for (const std::string& name : scale_names) {
      std::size_t consumed = 0;
      const double scale = std::stod(name, &consumed);
      if (consumed != name.size() || scale <= 0.0)
        throw std::invalid_argument(
            "flag --arrival-scales: bad multiplier '" + name + "'");
      arrival_scales.push_back(scale);
    }

    // Solo completion times (T_J) are measured once on the first slot
    // configuration; deadlines scale with T_J per Section V-B either way.
    core::SimConfig solo_cfg;
    solo_cfg.map_slots = slot_configs.front().first;
    solo_cfg.reduce_slots = slot_configs.front().second;
    solo_cfg.min_map_percent_completed = flags->GetDouble("slowstart");
    const backend::SimSession session =
        backend::SimSession::FromDatabase(flags->Get("db"), solo_cfg);

    // The full grid, replicate innermost so each cell is contiguous.
    // Session seeds are split from the master seed by session index:
    // identical for every thread count.
    const Rng master(static_cast<std::uint64_t>(flags->GetInt("seed")));
    std::vector<SweepPoint> points;
    for (const std::string& policy : policies) {
      for (const auto& [map_slots, reduce_slots] : slot_configs) {
        for (const double scale : arrival_scales) {
          for (int r = 0; r < replicates; ++r) {
            SweepPoint p;
            p.policy = policy;
            p.map_slots = map_slots;
            p.reduce_slots = reduce_slots;
            p.arrival_scale = scale;
            p.replicate = r;
            p.seed = master.Split("sweep/session", points.size())();
            points.push_back(std::move(p));
          }
        }
      }
    }

    const unsigned threads =
        static_cast<unsigned>(tools::ResolveThreads(*flags));

    // Observability sinks attach to session 0 only (one observer cannot be
    // shared across concurrently running engines); telemetry still
    // aggregates the whole sweep.
    tools::ObservabilitySinks sinks;
    sinks.Init(*flags);
    sinks.SetSlotConfig(points.front().map_slots, points.front().reduce_slots);
    sinks.live().sessions_total.store(points.size());

    std::vector<SweepRecord> records(points.size());
    const auto wall_start = std::chrono::steady_clock::now();
    ParallelFor(
        points.size(),
        [&](std::size_t i) {
          const SweepPoint& p = points[i];
          backend::ReplaySpec spec;
          spec.policy = p.policy;
          spec.map_slots = p.map_slots;
          spec.reduce_slots = p.reduce_slots;
          spec.slowstart = flags->GetDouble("slowstart");
          spec.num_jobs = flags->GetInt("jobs");
          spec.mean_interarrival_s = flags->GetDouble("mean-interarrival");
          spec.arrival_scale = p.arrival_scale;
          spec.deadline_factor = flags->GetDouble("deadline-factor");
          spec.seed = p.seed;
          spec.record_tasks = true;
          if (i == 0) spec.observer = sinks.observer();
          const backend::RunResult result = session.Replay(spec);
          records[i].point = p;
          records[i].summary =
              analysis::Summarize(result, p.map_slots, p.reduce_slots);
          // Live /progress: session 0's events are already counted by the
          // serving observer; the others are added as they finish.
          if (i != 0 || !sinks.serving()) {
            sinks.live().events_processed.fetch_add(
                result.events_processed, std::memory_order_relaxed);
          }
          sinks.live().sessions_completed.fetch_add(
              1, std::memory_order_relaxed);
        },
        threads);
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    std::printf("%-10s %-9s %8s %5s %12s %12s %8s %7s\n", "policy", "slots",
                "xarrival", "reps", "makespan_s", "mean_cmpl_s", "utility",
                "missed");
    for (std::size_t i = 0; i < records.size();
         i += static_cast<std::size_t>(replicates)) {
      const SweepPoint& p = records[i].point;
      double makespan = 0.0, utility = 0.0, completion = 0.0;
      int missed = 0;
      for (int r = 0; r < replicates; ++r) {
        const analysis::ResultSummary& s =
            records[i + static_cast<std::size_t>(r)].summary;
        makespan += s.makespan;
        utility += s.deadline_utility;
        completion += s.mean_completion_s;
        missed += s.missed_deadlines;
      }
      const double n = static_cast<double>(replicates);
      std::printf("%-10s %-9s %8.2f %5d %12.1f %12.1f %8.3f %7.1f\n",
                  p.policy.c_str(), FormatSlots(p).c_str(), p.arrival_scale,
                  replicates, makespan / n, completion / n, utility / n,
                  static_cast<double>(missed) / n);
    }

    std::uint64_t total_events = 0, total_jobs = 0;
    double max_makespan = 0.0;
    for (const SweepRecord& record : records) {
      total_events += record.summary.events_processed;
      total_jobs += record.summary.jobs;
      max_makespan = std::max(max_makespan, record.summary.makespan);
    }
    std::printf(
        "\nsweep: %zu sessions (%zu cells x %d replicates) on %u threads "
        "in %.2f s (%.1f sessions/s)\n",
        records.size(), records.size() / static_cast<std::size_t>(replicates),
        replicates, threads, wall_seconds,
        wall_seconds > 0.0 ? static_cast<double>(records.size()) / wall_seconds
                           : 0.0);

    if (!flags->Get("out").empty()) {
      WriteSweepJson(flags->Get("out"), *flags, policies, slot_names,
                     arrival_scales, replicates, threads, wall_seconds,
                     records);
      std::printf("sweep results written to %s\n", flags->Get("out").c_str());
    }

    tools::RunSummary summary;
    summary.tool = "simmr_sweep";
    summary.scenario =
        "sessions=" + std::to_string(records.size()) +
        " policies=" + flags->Get("policies") + " threads=" +
        std::to_string(threads);
    summary.simulator = "simmr";
    summary.wall_seconds = wall_seconds;
    summary.events_processed = total_events;
    summary.jobs = total_jobs;
    summary.makespan = max_makespan;
    sinks.Write(summary);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
