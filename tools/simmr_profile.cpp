// simmr_profile: MRProfiler as a command — parse a history log into
// replayable job templates and store them in a trace database.
//
//   simmr_profile --log=history.log --out-db=traces/
#include <cstdio>

#include "cluster/history_log.h"
#include "tool_common.h"
#include "trace/mr_profiler.h"
#include "trace/trace_database.h"

int main(int argc, char** argv) {
  using namespace simmr;
  const auto flags = tools::Flags::Parse(
      argc, argv,
      "Extracts job profiles (the paper's job templates) from a history\n"
      "log and persists them in a trace database directory.",
      {
          {"log", "history.log", "input history-log path"},
          {"out-db", "traces", "output trace-database directory"},
          tools::LogLevelFlag(),
      });
  if (!flags) return tools::Flags::LastParseFailed() ? 1 : 0;
  if (!tools::ApplyLogLevel(*flags)) return 1;

  try {
    const auto log = cluster::HistoryLog::ReadFile(flags->Get("log"));
    trace::TraceDatabase db;
    for (auto& profile : trace::BuildAllProfiles(log)) {
      db.Put(std::move(profile));
    }
    db.Save(flags->Get("out-db"));

    std::printf("profiled %zu jobs into %s\n", db.size(),
                flags->Get("out-db").c_str());
    for (const auto id : db.AllIds()) {
      const trace::JobProfile& p = db.Get(id);
      const auto map = p.MapSummary();
      const auto sh = p.TypicalShuffleSummary();
      const auto red = p.ReduceSummary();
      std::printf(
          "  #%-3d %-12s %-18s N_M=%-4d N_R=%-4d M(avg=%.1f,max=%.1f) "
          "Sh(avg=%.1f) R(avg=%.1f)\n",
          id, p.app_name.c_str(), p.dataset.c_str(), p.num_maps,
          p.num_reduces, map.mean, map.max, sh.mean, red.mean);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
