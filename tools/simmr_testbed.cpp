// simmr_testbed: run a workload on the Hadoop testbed emulator and write a
// JobTracker-style history log (the repository's stand-in for collecting
// logs from a real cluster).
//
//   simmr_testbed --suite=validation --out=history.log
//   simmr_testbed --suite=full --nodes=64 --scheduler=edf --seed=7
//   simmr_testbed --suite=validation --event-log-out=run.jsonl
#include <chrono>
#include <cstdio>

#include "backend/backends.h"
#include "cluster/cluster_sim.h"
#include "fault/fault_gen.h"
#include "fault/fault_plan.h"
#include "tool_common.h"

int main(int argc, char** argv) {
  using namespace simmr;
  std::vector<tools::FlagSpec> flag_specs = {
      {"suite", "validation",
       "job set: validation (6 apps), full (6 apps x 3 datasets), "
       "section2 (the 200x256 WordCount)"},
      {"out", "history.log", "output history-log path"},
      {"nodes", "64", "worker node count"},
      {"map-slots-per-node", "1", "map slots per worker"},
      {"reduce-slots-per-node", "1", "reduce slots per worker"},
      {"scheduler", "fifo", "testbed scheduler: fifo | edf"},
      {"failure-prob", "0", "task attempt failure probability"},
      {"gap", "10000", "submission gap between jobs, seconds"},
      {"seed", "42", "master seed"},
      {"fault-plan", "",
       "optional simmr.faultplan.v1 file (its geometry must match "
       "--nodes and the per-node slot flags)"},
      {"fault-seed", "",
       "generate a fault plan from this seed (decimal or any string, "
       "e.g. a git SHA) against the configured geometry; mutually "
       "exclusive with --fault-plan"},
      {"fault-plan-out", "",
       "write the active fault plan here (handy for archiving a "
       "--fault-seed draw as a CI artifact or corpus pin)"},
      {"expiry", "600",
       "tasktracker expiry interval, s (how long a silent node survives "
       "before the JobTracker declares it lost)"},
      tools::LogLevelFlag(),
  };
  for (auto& spec : tools::ObservabilityFlagSpecs()) flag_specs.push_back(spec);
  const auto flags = tools::Flags::Parse(
      argc, argv,
      "Runs MapReduce jobs on the emulated 66-node cluster and writes a\n"
      "history log consumable by simmr_profile.",
      std::move(flag_specs));
  if (!flags) return tools::Flags::LastParseFailed() ? 1 : 0;
  if (!tools::ApplyLogLevel(*flags)) return 1;

  try {
    std::vector<cluster::JobSpec> specs;
    const std::string suite = flags->Get("suite");
    if (suite == "validation") {
      specs = cluster::ValidationSuite();
    } else if (suite == "full") {
      specs = cluster::FullWorkloadSuite();
    } else if (suite == "section2") {
      specs = {cluster::SectionTwoExample()};
    } else {
      std::fprintf(stderr, "error: unknown suite '%s'\n", suite.c_str());
      return 1;
    }

    std::vector<cluster::SubmittedJob> jobs;
    double t = 0.0;
    for (const auto& spec : specs) {
      jobs.push_back({spec, t, 0.0});
      t += flags->GetDouble("gap");
    }

    cluster::TestbedOptions opts;
    opts.config.num_nodes = flags->GetInt("nodes");
    opts.config.map_slots_per_node = flags->GetInt("map-slots-per-node");
    opts.config.reduce_slots_per_node =
        flags->GetInt("reduce-slots-per-node");
    opts.config.task_failure_prob = flags->GetDouble("failure-prob");
    opts.config.tasktracker_expiry_interval = flags->GetDouble("expiry");
    opts.seed = static_cast<std::uint64_t>(flags->GetInt("seed"));
    fault::FaultPlan fault_plan;
    if (!flags->Get("fault-plan").empty() &&
        !flags->Get("fault-seed").empty()) {
      std::fprintf(stderr,
                   "error: --fault-plan and --fault-seed are mutually "
                   "exclusive\n");
      return 1;
    }
    if (!flags->Get("fault-plan").empty()) {
      fault_plan = fault::ReadFaultPlanFile(flags->Get("fault-plan"));
      opts.fault_plan = &fault_plan;
    } else if (!flags->Get("fault-seed").empty()) {
      fault::FaultGenOptions gen;
      gen.num_nodes = opts.config.num_nodes;
      gen.map_slots_per_node = opts.config.map_slots_per_node;
      gen.reduce_slots_per_node = opts.config.reduce_slots_per_node;
      gen.kill_jobs = static_cast<std::int32_t>(specs.size());
      fault_plan = fault::GenerateFaultPlan(
          tools::ResolveSeed(flags->Get("fault-seed")), gen);
      opts.fault_plan = &fault_plan;
    }
    if (!flags->Get("fault-plan-out").empty())
      fault::WriteFaultPlanFile(flags->Get("fault-plan-out"), fault_plan);
    const std::string scheduler = flags->Get("scheduler");
    if (scheduler == "edf") {
      opts.scheduler = cluster::SchedulerKind::kEdf;
    } else if (scheduler != "fifo") {
      std::fprintf(stderr, "error: unknown scheduler '%s'\n",
                   scheduler.c_str());
      return 1;
    }

    tools::ObservabilitySinks sinks;
    sinks.Init(*flags);
    sinks.SetSlotConfig(
        opts.config.num_nodes * opts.config.map_slots_per_node,
        opts.config.num_nodes * opts.config.reduce_slots_per_node);
    sinks.live().sessions_total.store(1);
    opts.observer = sinks.observer();

    const auto wall_start = std::chrono::steady_clock::now();
    const backend::RunResult result =
        backend::TestbedBackend(std::move(jobs), opts).Run();
    sinks.live().sessions_completed.store(1);
    if (!sinks.serving())
      sinks.live().events_processed.store(result.events_processed);
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    // The adaptation keeps the full history log; the testbed's file format
    // and the per-job map/reduce counts come from there.
    const cluster::HistoryLog& log = *result.history;
    log.WriteFile(flags->Get("out"));

    std::printf("ran %zu jobs on %d nodes (%llu events); log: %s\n",
                log.jobs().size(), opts.config.num_nodes,
                static_cast<unsigned long long>(result.events_processed),
                flags->Get("out").c_str());
    for (const auto& job : log.jobs()) {
      std::printf("  %-12s %-18s maps=%4d reduces=%4d completion=%9.1f s\n",
                  job.app_name.c_str(), job.dataset.c_str(), job.num_maps,
                  job.num_reduces, job.finish_time - job.submit_time);
    }

    tools::RunSummary summary;
    summary.tool = "simmr_testbed";
    summary.scenario = "suite=" + suite +
                       " nodes=" + std::to_string(opts.config.num_nodes);
    summary.simulator = "testbed";
    summary.wall_seconds = wall_seconds;
    summary.events_processed = result.events_processed;
    summary.jobs = result.jobs.size();
    summary.makespan = result.makespan;
    sinks.Write(summary);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
