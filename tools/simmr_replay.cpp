// simmr_replay: the SimMR engine as a command — assemble a workload from a
// trace database and replay it under a scheduling policy.
//
//   simmr_replay --db=traces/ --policy=minedf --deadline-factor=1.5
//   simmr_replay --db=traces/ --policy=fair --mean-interarrival=100
//                --out-log=replay.log
//   simmr_replay --db=traces/ --trace-out=t.json --metrics-out=m.txt
//                --telemetry-out=r.json --event-log-out=run.jsonl
#include <chrono>
#include <cstdio>
#include <memory>

#include "analysis/result_stats.h"
#include "backend/session.h"
#include "core/sim_log.h"
#include "fault/fault_plan.h"
#include "tool_common.h"

int main(int argc, char** argv) {
  using namespace simmr;
  std::vector<tools::FlagSpec> specs = {
          {"db", "traces", "trace-database directory"},
          {"policy", "fifo", "fifo | maxedf | minedf | fair | capacity"},
          {"map-slots", "64", "cluster map slots"},
          {"reduce-slots", "64", "cluster reduce slots"},
          {"mean-interarrival", "100", "exponential arrival mean, s (0 = all at t=0)"},
          {"deadline-factor", "0", "df >= 1 enables deadlines in [T, df*T]"},
          {"jobs", "0", "number of jobs (0 = one instance of each profile)"},
          {"slowstart", "0.05", "minMapPercentCompleted gate"},
          {"seed", "42", "workload randomization seed"},
          {"fault-plan", "",
           "optional simmr.faultplan.v1 file; node faults become "
           "slot-capacity deltas, so the plan's geometry must match "
           "--map-slots/--reduce-slots (or be geometry-free)"},
          {"out-log", "", "optional simulation output-log path"},
          tools::LogLevelFlag(),
      };
  for (auto& spec : tools::ObservabilityFlagSpecs()) specs.push_back(spec);
  const auto flags = tools::Flags::Parse(
      argc, argv,
      "Replays a trace-database workload in the SimMR engine under a\n"
      "pluggable scheduling policy and reports per-job completions, the\n"
      "deadline utility and slot utilization.",
      std::move(specs));
  if (!flags) return tools::Flags::LastParseFailed() ? 1 : 0;
  if (!tools::ApplyLogLevel(*flags)) return 1;

  try {
    backend::ReplaySpec spec;
    spec.policy = flags->Get("policy");
    spec.map_slots = flags->GetInt("map-slots");
    spec.reduce_slots = flags->GetInt("reduce-slots");
    spec.slowstart = flags->GetDouble("slowstart");
    spec.record_tasks = true;
    spec.num_jobs = flags->GetInt("jobs");
    spec.mean_interarrival_s = flags->GetDouble("mean-interarrival");
    spec.deadline_factor = flags->GetDouble("deadline-factor");
    spec.seed = static_cast<std::uint64_t>(flags->GetInt("seed"));

    fault::FaultPlan fault_plan;
    if (!flags->Get("fault-plan").empty()) {
      fault_plan = fault::ReadFaultPlanFile(flags->Get("fault-plan"));
      spec.fault_plan = &fault_plan;
    }

    // Resolve the policy up front: its display name labels the report, and
    // an unknown --policy fails before the solo-completion measurement.
    const auto policy =
        backend::MakePolicy(spec.policy, spec.map_slots, spec.reduce_slots);

    core::SimConfig solo_cfg;
    solo_cfg.map_slots = spec.map_slots;
    solo_cfg.reduce_slots = spec.reduce_slots;
    solo_cfg.min_map_percent_completed = spec.slowstart;
    const auto session =
        backend::SimSession::FromDatabase(flags->Get("db"), solo_cfg);

    // Observability sinks, attached only when requested so the default run
    // keeps the engine's no-observer fast path.
    tools::ObservabilitySinks sinks;
    sinks.Init(*flags);
    sinks.SetSlotConfig(spec.map_slots, spec.reduce_slots);
    sinks.live().sessions_total.store(1);
    spec.observer = sinks.observer();

    const auto wall_start = std::chrono::steady_clock::now();
    const backend::RunResult result = session.Replay(spec);
    sinks.live().sessions_completed.store(1);
    if (!sinks.serving())
      sinks.live().events_processed.store(result.events_processed);
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    std::printf("%-20s %10s %10s %12s %10s %6s\n", "job", "arrival_s",
                "finish_s", "completion_s", "deadline_s", "met?");
    for (const auto& job : result.jobs) {
      std::printf("%-20s %10.1f %10.1f %12.1f %10.1f %6s\n",
                  job.name.c_str(), job.submit, job.finish,
                  job.CompletionTime(), job.deadline,
                  job.deadline <= 0.0 ? "-"
                  : job.MissedDeadline() ? "NO"
                                          : "yes");
    }

    const analysis::ResultSummary stats =
        analysis::Summarize(result, spec.map_slots, spec.reduce_slots);
    std::printf(
        "\npolicy=%s jobs=%zu makespan=%.1f s events=%llu\n"
        "deadline utility=%.3f missed=%d\n"
        "slot utilization: map %.1f%%, reduce %.1f%%\n",
        policy->Name(), stats.jobs, stats.makespan,
        static_cast<unsigned long long>(stats.events_processed),
        stats.deadline_utility, stats.missed_deadlines,
        100.0 * stats.utilization.map_utilization,
        100.0 * stats.utilization.reduce_utilization);

    if (!flags->Get("out-log").empty()) {
      core::WriteSimulationLogFile(flags->Get("out-log"),
                                   backend::ToSimResult(result));
      std::printf("simulation log written to %s\n",
                  flags->Get("out-log").c_str());
    }

    tools::RunSummary summary;
    summary.tool = "simmr_replay";
    summary.scenario = "policy=" + std::string(policy->Name()) +
                       " jobs=" + std::to_string(result.jobs.size());
    summary.simulator = "simmr";
    summary.wall_seconds = wall_seconds;
    summary.events_processed = result.events_processed;
    summary.jobs = result.jobs.size();
    summary.makespan = result.makespan;
    sinks.Write(summary);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
