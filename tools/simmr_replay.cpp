// simmr_replay: the SimMR engine as a command — assemble a workload from a
// trace database and replay it under a scheduling policy.
//
//   simmr_replay --db=traces/ --policy=minedf --deadline-factor=1.5
//   simmr_replay --db=traces/ --policy=fair --mean-interarrival=100
//                --out-log=replay.log
//   simmr_replay --db=traces/ --trace-out=t.json --metrics-out=m.txt
//                --telemetry-out=r.json --event-log-out=run.jsonl
#include <chrono>
#include <cstdio>
#include <memory>

#include "core/sim_log.h"
#include "core/simmr.h"
#include "sched/capacity.h"
#include "sched/fair.h"
#include "sched/fifo.h"
#include "sched/maxedf.h"
#include "sched/minedf.h"
#include "tool_common.h"
#include "trace/trace_database.h"
#include "trace/workload.h"

int main(int argc, char** argv) {
  using namespace simmr;
  std::vector<tools::FlagSpec> specs = {
          {"db", "traces", "trace-database directory"},
          {"policy", "fifo", "fifo | maxedf | minedf | fair | capacity"},
          {"map-slots", "64", "cluster map slots"},
          {"reduce-slots", "64", "cluster reduce slots"},
          {"mean-interarrival", "100", "exponential arrival mean, s (0 = all at t=0)"},
          {"deadline-factor", "0", "df >= 1 enables deadlines in [T, df*T]"},
          {"jobs", "0", "number of jobs (0 = one instance of each profile)"},
          {"slowstart", "0.05", "minMapPercentCompleted gate"},
          {"seed", "42", "workload randomization seed"},
          {"out-log", "", "optional simulation output-log path"},
          tools::LogLevelFlag(),
      };
  for (auto& spec : tools::ObservabilityFlagSpecs()) specs.push_back(spec);
  const auto flags = tools::Flags::Parse(
      argc, argv,
      "Replays a trace-database workload in the SimMR engine under a\n"
      "pluggable scheduling policy and reports per-job completions, the\n"
      "deadline utility and slot utilization.",
      std::move(specs));
  if (!flags) return tools::Flags::LastParseFailed() ? 1 : 0;
  if (!tools::ApplyLogLevel(*flags)) return 1;

  try {
    const auto db = trace::TraceDatabase::Load(flags->Get("db"));
    if (db.empty()) {
      std::fprintf(stderr, "error: trace database is empty\n");
      return 1;
    }
    std::vector<trace::JobProfile> pool;
    for (const auto id : db.AllIds()) pool.push_back(db.Get(id));

    core::SimConfig cfg;
    cfg.map_slots = flags->GetInt("map-slots");
    cfg.reduce_slots = flags->GetInt("reduce-slots");
    cfg.min_map_percent_completed = flags->GetDouble("slowstart");
    cfg.record_tasks = true;

    const auto solos = core::MeasureSoloCompletions(pool, cfg);
    trace::WorkloadParams params;
    params.num_jobs = flags->GetInt("jobs");
    params.mean_interarrival_s = flags->GetDouble("mean-interarrival");
    params.deadline_factor = flags->GetDouble("deadline-factor");
    Rng rng(static_cast<std::uint64_t>(flags->GetInt("seed")));
    const auto workload = trace::MakeWorkload(pool, solos, params, rng);

    const std::string policy_name = flags->Get("policy");
    std::unique_ptr<core::SchedulerPolicy> policy;
    if (policy_name == "fifo") {
      policy = std::make_unique<sched::FifoPolicy>();
    } else if (policy_name == "maxedf") {
      policy = std::make_unique<sched::MaxEdfPolicy>();
    } else if (policy_name == "minedf") {
      policy = std::make_unique<sched::MinEdfPolicy>(cfg.map_slots,
                                                     cfg.reduce_slots);
    } else if (policy_name == "fair") {
      policy = std::make_unique<sched::FairPolicy>();
    } else if (policy_name == "capacity") {
      policy = std::make_unique<sched::CapacityPolicy>(
          cfg.map_slots, cfg.reduce_slots,
          std::vector<sched::QueueConfig>{{"default", 1.0}});
    } else {
      std::fprintf(stderr, "error: unknown policy '%s'\n",
                   policy_name.c_str());
      return 1;
    }

    // Observability sinks, attached only when requested so the default run
    // keeps the engine's no-observer fast path.
    tools::ObservabilitySinks sinks;
    sinks.Init(*flags);
    cfg.observer = sinks.observer();

    const auto wall_start = std::chrono::steady_clock::now();
    const auto result = core::Replay(workload, *policy, cfg);
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    std::printf("%-20s %10s %10s %12s %10s %6s\n", "job", "arrival_s",
                "finish_s", "completion_s", "deadline_s", "met?");
    for (const auto& job : result.jobs) {
      std::printf("%-20s %10.1f %10.1f %12.1f %10.1f %6s\n",
                  job.name.c_str(), job.arrival, job.completion,
                  job.CompletionTime(), job.deadline,
                  job.deadline <= 0.0 ? "-"
                  : job.MissedDeadline() ? "NO"
                                          : "yes");
    }

    const auto util = core::ComputeUtilization(result.tasks, cfg.map_slots,
                                               cfg.reduce_slots,
                                               result.makespan);
    std::printf(
        "\npolicy=%s jobs=%zu makespan=%.1f s events=%llu\n"
        "deadline utility=%.3f missed=%d\n"
        "slot utilization: map %.1f%%, reduce %.1f%%\n",
        policy->Name(), result.jobs.size(), result.makespan,
        static_cast<unsigned long long>(result.events_processed),
        core::RelativeDeadlineExceeded(result.jobs),
        core::MissedDeadlineCount(result.jobs),
        100.0 * util.map_utilization, 100.0 * util.reduce_utilization);

    if (!flags->Get("out-log").empty()) {
      core::WriteSimulationLogFile(flags->Get("out-log"), result);
      std::printf("simulation log written to %s\n",
                  flags->Get("out-log").c_str());
    }

    tools::RunSummary summary;
    summary.tool = "simmr_replay";
    summary.scenario = "policy=" + std::string(policy->Name()) +
                       " jobs=" + std::to_string(result.jobs.size());
    summary.simulator = "simmr";
    summary.wall_seconds = wall_seconds;
    summary.events_processed = result.events_processed;
    summary.jobs = result.jobs.size();
    summary.makespan = result.makespan;
    sinks.Write(summary);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
